"""Prefix-adder netlist generation (Zimmermann cell-based style, paper ref. [27]).

The paper builds adders "using alternating NAND/NOR, OAI/AOI, XNOR, NOR and
INV gates" (Section V-A). This module implements that polarity-alternating
scheme over an arbitrary legal prefix graph:

- **Pre-processing** produces complemented generate/propagate per bit:
  ``~g_i = NAND2(a_i, b_i)``, ``~p_i = XNOR2(a_i, b_i)``.
- **Prefix nodes** consume both parents' (G, P) in one polarity and emit the
  opposite polarity, so no inverters appear on a parity-aligned path:

  - complemented in, true out: ``G = OAI21(B1=~Pu, B2=~Gl, A=~Gu)``,
    ``P = NOR2(~Pu, ~Pl)``;
  - true in, complemented out: ``~G = AOI21(B1=Pu, B2=Gl, A=Gu)``,
    ``~P = NAND2(Pu, Pl)``.

  When the two parents arrive in different polarities (their levels differ
  in parity), INV cells repair the shallower parent — the deeper parent is
  the likelier critical path and stays inverter-free.
- **Sum stage**: ``s_i = XOR2(~p_i, ~c_{i-1})`` or ``XNOR2(~p_i, c_{i-1})``
  depending on the carry polarity; ``s_0 = INV(~p_0)``; ``cout`` is the
  top-level group generate.

Generation is *demand-driven*: a node's P signal is only materialized if a
consumer needs it, so the dead P-chains of the output column never exist.
This mirrors what logic synthesis would sweep away and keeps the area signal
honest.
"""

from __future__ import annotations

from repro.cells.library import CellLibrary
from repro.netlist.ir import Netlist
from repro.prefix.graph import PrefixGraph

TRUE_FORM = 0
COMP_FORM = 1


class _AdderBuilder:
    """Stateful demand-driven builder for one adder netlist."""

    def __init__(self, graph: PrefixGraph, library: CellLibrary, name: str):
        self.graph = graph
        self.lib = library
        self.nl = Netlist(name, library)
        # (msb, lsb, 'g'|'p', form) -> net name
        self._signal: "dict[tuple[int, int, str, int], str]" = {}
        self._levels = graph.levels()

    # -- polarity bookkeeping ------------------------------------------

    def _native_form(self, msb: int, lsb: int) -> int:
        """Polarity a node's (G, P) is produced in without repair inverters.

        Leaf pre-processing emits complemented signals (form 1); each prefix
        level flips polarity, so a node's native form is the parity of
        ``level + 1``.
        """
        if msb == lsb:
            return COMP_FORM
        return (int(self._levels[msb, lsb]) + 1) % 2

    # -- netlist helpers -----------------------------------------------

    def _gate(self, function: str, pins: "dict[str, str]", hint: str) -> str:
        cell = self.lib.smallest(function)
        out = self.nl.fresh_net(hint)
        pin_map = dict(pins)
        pin_map[cell.output_pin] = out
        self.nl.add_instance(cell, pin_map)
        return out

    def _invert(self, net: str, hint: str) -> str:
        return self._gate("INV", {"A": net}, hint)

    # -- signal construction -------------------------------------------

    def signal(self, msb: int, lsb: int, kind: str, form: int) -> str:
        """Net carrying the ``kind`` ('g' or 'p') of span [msb:lsb] in ``form``.

        Builds the cone on demand and memoizes; a polarity mismatch costs
        one INV, also memoized so repair inverters are shared.
        """
        key = (msb, lsb, kind, form)
        if key in self._signal:
            return self._signal[key]
        native = self._native_form(msb, lsb)
        if form != native:
            net = self._invert(self.signal(msb, lsb, kind, native), f"{kind}{msb}_{lsb}_inv")
        elif msb == lsb:
            net = self._leaf(msb, kind)
        else:
            net = self._prefix_node(msb, lsb, kind)
        self._signal[key] = net
        return net

    def _leaf(self, bit: int, kind: str) -> str:
        """Pre-processing gates: complemented g/p of a single bit."""
        a, b = f"a{bit}", f"b{bit}"
        if kind == "g":
            return self._gate("NAND2", {"A1": a, "A2": b}, f"gbar{bit}")
        return self._gate("XNOR2", {"A": a, "B": b}, f"pbar{bit}")

    def _prefix_node(self, msb: int, lsb: int, kind: str) -> str:
        """Carry-operator gates for node (msb, lsb) in its native form."""
        (um, ul), (lm, ll) = self.graph.parents(msb, lsb)
        native = self._native_form(msb, lsb)
        parent_form = COMP_FORM if native == TRUE_FORM else TRUE_FORM
        if kind == "g":
            g_up = self.signal(um, ul, "g", parent_form)
            p_up = self.signal(um, ul, "p", parent_form)
            g_lo = self.signal(lm, ll, "g", parent_form)
            if native == TRUE_FORM:
                # G = (Pu * Gl) + Gu from complemented parents.
                return self._gate(
                    "OAI21", {"B1": p_up, "B2": g_lo, "A": g_up}, f"g{msb}_{lsb}"
                )
            # ~G = !((Pu * Gl) + Gu) from true parents.
            return self._gate(
                "AOI21", {"B1": p_up, "B2": g_lo, "A": g_up}, f"gbar{msb}_{lsb}"
            )
        p_up = self.signal(um, ul, "p", parent_form)
        p_lo = self.signal(lm, ll, "p", parent_form)
        if native == TRUE_FORM:
            return self._gate("NOR2", {"A1": p_up, "A2": p_lo}, f"p{msb}_{lsb}")
        return self._gate("NAND2", {"A1": p_up, "A2": p_lo}, f"pbar{msb}_{lsb}")

    # -- top level -------------------------------------------------------

    def build(self, with_cout: bool) -> Netlist:
        n = self.graph.n
        for i in range(n):
            self.nl.add_input(f"a{i}")
            self.nl.add_input(f"b{i}")

        # s0 = p0 = a0 ^ b0, realized as INV(~p0).
        s0 = self._invert(self.signal(0, 0, "p", COMP_FORM), "s0")
        self._bind_output("s0", s0)

        for i in range(1, n):
            pbar = self.signal(i, i, "p", COMP_FORM)
            carry_native = self._native_form(i - 1, 0)
            if carry_native == COMP_FORM:
                cbar = self.signal(i - 1, 0, "g", COMP_FORM)
                s = self._gate("XOR2", {"A": pbar, "B": cbar}, f"s{i}")
            else:
                c = self.signal(i - 1, 0, "g", TRUE_FORM)
                s = self._gate("XNOR2", {"A": pbar, "B": c}, f"s{i}")
            self._bind_output(f"s{i}", s)

        if with_cout:
            cout = self.signal(n - 1, 0, "g", TRUE_FORM)
            self._bind_output("cout", cout)
        return self.nl

    def _bind_output(self, port: str, net: str) -> None:
        """Expose ``net`` as primary output ``port`` via a zero-cost alias.

        The IR has no net aliases, so the builder renames by inserting the
        port name directly: it re-declares the driving instance's output.
        A BUF would distort area, so we rename the net instead.
        """
        driver = self.nl.driver_of(net)
        if driver is None:
            raise AssertionError(f"output {port} driven by primary input {net}")
        inst = self.nl.instances[driver]
        # Rename net -> port on the driver and any existing sinks.
        inst.pins[inst.cell.output_pin] = port
        self.nl._driver[port] = driver
        del self.nl._driver[net]
        sinks = self.nl._sinks.pop(net, set())
        self.nl._sinks[port] = set()
        for sink_name, pin in sinks:
            self.nl.instances[sink_name].pins[pin] = port
            self.nl._sinks[port].add((sink_name, pin))
        self.nl.add_output(port)


class _NaiveAdderBuilder(_AdderBuilder):
    """Textbook AND-OR carry logic (the netlist-style ablation baseline).

    Every node computes ``G = OR2(AND2(Pu, Gl), Gu)`` and ``P = AND2(Pu,
    Pl)`` in true form; leaves use AND2/XOR2; sums use XOR2. Two logic
    levels per prefix node instead of one complex gate — the cost the
    polarity-alternating AOI/OAI style avoids.
    """

    def _native_form(self, msb: int, lsb: int) -> int:
        return TRUE_FORM

    def _leaf(self, bit: int, kind: str) -> str:
        a, b = f"a{bit}", f"b{bit}"
        if kind == "g":
            return self._gate("AND2", {"A1": a, "A2": b}, f"g{bit}")
        return self._gate("XOR2", {"A": a, "B": b}, f"p{bit}")

    def _prefix_node(self, msb: int, lsb: int, kind: str) -> str:
        (um, ul), (lm, ll) = self.graph.parents(msb, lsb)
        if kind == "g":
            g_up = self.signal(um, ul, "g", TRUE_FORM)
            p_up = self.signal(um, ul, "p", TRUE_FORM)
            g_lo = self.signal(lm, ll, "g", TRUE_FORM)
            term = self._gate("AND2", {"A1": p_up, "A2": g_lo}, f"t{msb}_{lsb}")
            return self._gate("OR2", {"A1": term, "A2": g_up}, f"g{msb}_{lsb}")
        p_up = self.signal(um, ul, "p", TRUE_FORM)
        p_lo = self.signal(lm, ll, "p", TRUE_FORM)
        return self._gate("AND2", {"A1": p_up, "A2": p_lo}, f"p{msb}_{lsb}")

    def build(self, with_cout: bool) -> Netlist:
        n = self.graph.n
        for i in range(n):
            self.nl.add_input(f"a{i}")
            self.nl.add_input(f"b{i}")
        # s0 = p0 directly; expose through a buffer-free rename via XOR2
        # with zero? The IR needs a driving gate, so s0 re-instantiates the
        # leaf XOR2 on the output net.
        s0 = self.signal(0, 0, "p", TRUE_FORM)
        self._bind_output("s0", s0)
        for i in range(1, n):
            p = self.signal(i, i, "p", TRUE_FORM)
            c = self.signal(i - 1, 0, "g", TRUE_FORM)
            s = self._gate("XOR2", {"A": p, "B": c}, f"s{i}")
            self._bind_output(f"s{i}", s)
        if with_cout:
            self._bind_output("cout", self.signal(n - 1, 0, "g", TRUE_FORM))
        return self.nl


def prefix_adder_netlist(
    graph: PrefixGraph,
    library: CellLibrary,
    name: "str | None" = None,
    with_cout: bool = True,
    style: str = "aoi",
) -> Netlist:
    """Generate the gate-level adder netlist for a prefix graph.

    Ports: inputs ``a0..a{n-1}``, ``b0..b{n-1}``; outputs ``s0..s{n-1}``
    and (by default) ``cout``. All cells start at minimum drive; sizing is
    the synthesis optimizer's job.

    ``style`` selects the carry-logic mapping: ``"aoi"`` (default) is the
    paper's polarity-alternating NAND/NOR + AOI/OAI scheme; ``"naive"`` is
    textbook AND-OR logic, kept as the ablation baseline (see DESIGN.md
    section 4.2).
    """
    if name is None:
        name = f"adder{graph.n}"
    if style == "aoi":
        builder = _AdderBuilder(graph, library, name)
    elif style == "naive":
        builder = _NaiveAdderBuilder(graph, library, name)
    else:
        raise ValueError(f"unknown netlist style {style!r}")
    netlist = builder.build(with_cout)
    netlist.validate()
    return netlist
