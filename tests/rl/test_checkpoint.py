"""Checkpoint format and save -> resume -> continue bit-identity."""

import json

import numpy as np
import pytest

from repro.env import PrefixEnv
from repro.rl import (
    CheckpointError,
    CheckpointManager,
    RuntimeConfig,
    ScalarizedDoubleDQN,
    TrainerConfig,
    TrainingRuntime,
)
from repro.rl.checkpoint import _flatten, _unflatten
from repro.synth import AnalyticalEvaluator


def make_sync_runtime(tmp_path=None, seed=3, steps=60, runtime=None, evaluator=None):
    env = PrefixEnv(
        6,
        evaluator if evaluator is not None else AnalyticalEvaluator(0.5, 0.5),
        horizon=12,
        rng=seed,
    )
    agent = ScalarizedDoubleDQN(6, 0.5, 0.5, blocks=0, channels=4, lr=1e-3, rng=seed)
    cfg = TrainerConfig(steps=steps, batch_size=4, warmup_steps=8)
    return TrainingRuntime(
        env, agent, cfg,
        runtime if runtime is not None else RuntimeConfig(mode="sync"),
        checkpoint_dir=tmp_path, rng=seed,
    ), env


def assert_histories_identical(a, b):
    assert a.env_steps == b.env_steps
    assert a.gradient_steps == b.gradient_steps
    for f in ("losses", "episode_returns", "areas", "delays", "epsilon_trace"):
        assert getattr(a, f) == getattr(b, f), f  # exact float equality


class TestFlatten:
    def test_round_trip(self):
        state = {
            "a": np.arange(6.0).reshape(2, 3),
            "b": {"c": [1, 2.5, None, True, "x"], "d": np.ones(2, dtype=bool)},
            "big": 2**127 + 1,  # PCG64-sized integer
            "e": [{"f": np.float64(1.25)}, (np.int64(3), "y")],
        }
        arrays = {}
        payload = _flatten(state, "", arrays)
        text = json.dumps(payload)  # must be JSON-serializable
        restored = _unflatten(json.loads(text), arrays)
        np.testing.assert_array_equal(restored["a"], state["a"])
        np.testing.assert_array_equal(restored["b"]["d"], state["b"]["d"])
        assert restored["b"]["c"] == [1, 2.5, None, True, "x"]
        assert restored["big"] == 2**127 + 1
        assert restored["e"][0]["f"] == 1.25
        assert restored["e"][1] == [3, "y"]

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError, match="cannot checkpoint"):
            _flatten({"bad": object()}, "", {})

    def test_rejects_non_str_keys(self):
        with pytest.raises(TypeError, match="keys must be str"):
            _flatten({("t",): 1}, "", {})


class TestCheckpointManager:
    def _state(self):
        return {"x": np.arange(4.0), "y": {"z": 7}}

    def test_save_load_round_trip(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(self._state(), step=10, meta={"mode": "sync"})
        state, manifest = mgr.load()
        np.testing.assert_array_equal(state["x"], np.arange(4.0))
        assert state["y"]["z"] == 7
        assert manifest["step"] == 10
        assert manifest["meta"]["mode"] == "sync"

    def test_latest_wins(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save({"v": 1}, step=5)
        mgr.save({"v": 2}, step=9)
        state, manifest = mgr.load()
        assert state["v"] == 2 and manifest["step"] == 9
        state, _ = mgr.load(step=5)
        assert state["v"] == 1

    def test_prune_keeps_last(self, tmp_path):
        mgr = CheckpointManager(tmp_path, keep_last=2)
        for step in (1, 2, 3, 4):
            mgr.save({"v": step}, step=step)
        assert mgr.steps() == [3, 4]

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint found"):
            CheckpointManager(tmp_path).load()

    def test_corrupted_arrays_detected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(self._state(), step=3)
        blob = (path / "arrays.npz").read_bytes()
        (path / "arrays.npz").write_bytes(blob[:-7] + b"garbage")
        with pytest.raises(CheckpointError, match="corrupted"):
            mgr.load()

    def test_truncated_state_detected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(self._state(), step=3)
        text = (path / "state.json").read_text()
        (path / "state.json").write_text(text[: len(text) // 2])
        with pytest.raises(CheckpointError, match="corrupted"):
            mgr.load()

    def test_missing_payload_detected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(self._state(), step=3)
        (path / "arrays.npz").unlink()
        with pytest.raises(CheckpointError, match="missing"):
            mgr.load()

    def test_missing_manifest_detected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(self._state(), step=3)
        (path / "manifest.json").unlink()
        with pytest.raises(CheckpointError, match="incomplete"):
            mgr.load()

    def test_version_gate(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(self._state(), step=3)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["version"] = 999
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="version 999"):
            mgr.load()

    def test_foreign_format_rejected(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        path = mgr.save(self._state(), step=3)
        manifest = json.loads((path / "manifest.json").read_text())
        manifest["format"] = "something-else"
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="not a prefixrl-checkpoint"):
            mgr.load()

    def test_interrupted_save_is_invisible(self, tmp_path):
        mgr = CheckpointManager(tmp_path)
        mgr.save(self._state(), step=3)
        # A crash mid-save leaves a .tmp-* staging directory behind.
        staged = tmp_path / ".tmp-step-00000009-1234"
        staged.mkdir()
        (staged / "state.json").write_text("{}")
        state, manifest = mgr.load()
        assert manifest["step"] == 3
        assert mgr.steps() == [3]


class TestTrainingRoundTrip:
    def test_resume_bit_identical_analytical(self, tmp_path):
        rt_full, _ = make_sync_runtime()
        h_full = rt_full.run()

        rt_part, _ = make_sync_runtime(
            tmp_path, runtime=RuntimeConfig(mode="sync", stop_after=25)
        )
        h_part = rt_part.run()
        assert rt_part.preempted and h_part.env_steps == 25

        rt_res, _ = make_sync_runtime(tmp_path, seed=3)
        h_res = rt_res.run(resume=True)
        assert not rt_res.preempted
        assert_histories_identical(h_full, h_res)

    def test_resume_bit_identical_synthesis(self, tmp_path):
        from repro.cells import nangate45
        from repro.synth import SynthesisCache, SynthesisEvaluator

        library = nangate45()

        def evaluator():
            return SynthesisEvaluator(library, cache=SynthesisCache())

        rt_full, env_full = make_sync_runtime(steps=30, evaluator=evaluator())
        h_full = rt_full.run()

        rt_part, _ = make_sync_runtime(
            tmp_path, steps=30, evaluator=evaluator(),
            runtime=RuntimeConfig(mode="sync", stop_after=12),
        )
        rt_part.run()

        rt_res, env_res = make_sync_runtime(tmp_path, steps=30, evaluator=evaluator())
        h_res = rt_res.run(resume=True)
        assert_histories_identical(h_full, h_res)
        # Cache counters and archive ride along exactly.
        assert h_res.synthesis_stats == h_full.synthesis_stats
        assert env_res.archive.points() == env_full.archive.points()

    def test_resume_through_multiple_preemptions(self, tmp_path):
        rt_full, _ = make_sync_runtime()
        h_full = rt_full.run()

        rt, _ = make_sync_runtime(
            tmp_path, runtime=RuntimeConfig(mode="sync", stop_after=10)
        )
        rt.run()
        for stop in (20, 40):
            rt, _ = make_sync_runtime(
                tmp_path, runtime=RuntimeConfig(mode="sync", stop_after=stop)
            )
            h = rt.run(resume=True)
            assert h.env_steps == stop
        rt, _ = make_sync_runtime(tmp_path)
        h_res = rt.run(resume=True)
        assert_histories_identical(h_full, h_res)

    def test_periodic_checkpoints_written(self, tmp_path):
        rt, _ = make_sync_runtime(
            tmp_path, runtime=RuntimeConfig(mode="sync", checkpoint_every=20,
                                            keep_checkpoints=10)
        )
        rt.run()
        assert rt.manager.steps() == [20, 40, 60]

    def test_config_drift_rejected(self, tmp_path):
        rt, _ = make_sync_runtime(
            tmp_path, runtime=RuntimeConfig(mode="sync", stop_after=10)
        )
        rt.run()
        env = PrefixEnv(6, AnalyticalEvaluator(0.5, 0.5), horizon=12, rng=3)
        agent = ScalarizedDoubleDQN(6, 0.5, 0.5, blocks=0, channels=4, rng=3)
        drifted = TrainerConfig(steps=60, batch_size=8, warmup_steps=8)
        rt2 = TrainingRuntime(
            env, agent, drifted, RuntimeConfig(mode="sync"),
            checkpoint_dir=tmp_path, rng=3,
        )
        with pytest.raises(CheckpointError, match="drifted"):
            rt2.run(resume=True)

    def test_mode_mismatch_rejected(self, tmp_path):
        rt, _ = make_sync_runtime(
            tmp_path, runtime=RuntimeConfig(mode="sync", stop_after=10)
        )
        rt.run()
        envs = [PrefixEnv(6, AnalyticalEvaluator(0.5, 0.5), horizon=12, rng=i) for i in range(2)]
        agent = ScalarizedDoubleDQN(6, 0.5, 0.5, blocks=0, channels=4, rng=3)
        rt2 = TrainingRuntime(
            envs, agent, TrainerConfig(steps=60, batch_size=4, warmup_steps=8),
            RuntimeConfig(mode="async", num_actors=2), checkpoint_dir=tmp_path, rng=3,
        )
        with pytest.raises(CheckpointError, match="mode"):
            rt2.run(resume=True)

    def test_resume_without_checkpoint_dir_fails(self):
        rt, _ = make_sync_runtime()
        with pytest.raises(CheckpointError, match="without a checkpoint_dir"):
            rt.run(resume=True)
