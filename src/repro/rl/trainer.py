"""The single-weight training loop.

One :class:`Trainer` runs one agent (one scalarization weight) against one
environment: epsilon-greedy experience collection into the replay buffer,
gradient steps on a fixed cadence, target sync handled by the agent, and
the environment's Pareto archive accumulating every evaluated design.

The trainer also accepts a :class:`repro.env.VectorPrefixEnv`: ``E``
replicas then advance in lockstep with one stacked Q-net forward per round
(amortizing the convolution cost — Section V-C's batched acting), while
featurization/mask work rides the per-graph memo so each state is analyzed
once no matter how many times the loop observes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.env.environment import PrefixEnv
from repro.env.vector import VectorPrefixEnv
from repro.rl.agent import ScalarizedDoubleDQN
from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.schedule import LinearSchedule


@dataclass
class TrainerConfig:
    """Knobs of one training run.

    Defaults are CI-scale; the paper-scale values are noted inline.
    """

    steps: int = 400                  # paper: 5e5 env steps (64b)
    batch_size: int = 16              # paper: 96 per GPU
    buffer_capacity: int = 10_000     # paper: 4e5
    warmup_steps: int = 32            # learning starts once buffer has this many
    learn_every: int = 1              # gradient step cadence (env steps)
    epsilon_start: float = 1.0
    epsilon_end: float = 0.0          # paper: annealed to zero
    epsilon_anneal_frac: float = 0.8  # fraction of steps to anneal over


@dataclass
class TrainingHistory:
    """Per-run telemetry collected by :class:`Trainer.run`."""

    losses: "list[float]" = field(default_factory=list)
    episode_returns: "list[float]" = field(default_factory=list)
    areas: "list[float]" = field(default_factory=list)
    delays: "list[float]" = field(default_factory=list)
    epsilon_trace: "list[float]" = field(default_factory=list)
    env_steps: int = 0
    gradient_steps: int = 0
    synthesis_stats: "dict | None" = None  # cache/farm counters (synthesis evaluators only)


class Trainer:
    """Wires an environment, an agent and a replay buffer into one run.

    ``env`` may be a single :class:`PrefixEnv` (the paper-faithful
    sequential loop) or a :class:`VectorPrefixEnv` (batched collection:
    one stacked forward selects every replica's action each round).
    """

    def __init__(
        self,
        env: "PrefixEnv | VectorPrefixEnv",
        agent: ScalarizedDoubleDQN,
        config: "TrainerConfig | None" = None,
        rng=None,
    ):
        self.env = env
        self.agent = agent
        self.config = config if config is not None else TrainerConfig()
        self.buffer = ReplayBuffer(self.config.buffer_capacity, rng=rng)

    def run(self, steps: "int | None" = None) -> TrainingHistory:
        """Train for ``steps`` environment steps (default: config.steps)."""
        total = steps if steps is not None else self.config.steps
        anneal = max(int(total * self.config.epsilon_anneal_frac), 1)
        schedule = LinearSchedule(
            self.config.epsilon_start, self.config.epsilon_end, anneal
        )
        if isinstance(self.env, VectorPrefixEnv):
            history = self._run_vector(total, schedule)
        else:
            history = self._run_single(total, schedule)
        history.synthesis_stats = self._synthesis_stats()
        return history

    def _synthesis_stats(self) -> "dict | None":
        """Cache/farm observability snapshot for synthesis-backed evaluators.

        Aggregates hit/miss counters over the distinct
        :class:`repro.synth.SynthesisCache` objects behind the run's
        evaluators (replicas usually share one) and attaches the
        cumulative :meth:`repro.distributed.SynthesisFarm.stats` of an
        attached farm. Returns None for cacheless (e.g. analytical)
        evaluators.
        """
        envs = self.env.envs if isinstance(self.env, VectorPrefixEnv) else [self.env]
        caches = []
        farm = None
        for env in envs:
            cache = getattr(env.evaluator, "cache", None)
            if cache is not None and not any(cache is c for c in caches):
                caches.append(cache)
            if farm is None:
                farm = getattr(env.evaluator, "farm", None)
        if not caches:
            return None
        hits = sum(c.hits for c in caches)
        misses = sum(c.misses for c in caches)
        stats = {
            "cache": {
                "entries": sum(len(c) for c in caches),
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
                "shared": len(caches) == 1 and len(envs) > 1,
            }
        }
        if farm is not None:
            stats["farm"] = farm.stats()
        return stats

    # ------------------------------------------------------------------
    # Sequential collection (one environment)
    # ------------------------------------------------------------------

    def _run_single(self, total: int, schedule: LinearSchedule) -> TrainingHistory:
        cfg = self.config
        history = TrainingHistory()

        state = self.env.reset()
        obs = self.env.observe(state)
        mask = self.env.legal_mask(state)
        episode_return = 0.0

        for step in range(total):
            epsilon = schedule(step)
            action_idx = self.agent.act(obs, mask, epsilon=epsilon)
            action = self.env.action_space.action(action_idx)
            result = self.env.step(action)

            next_obs = self.env.observe(result.next_state)
            next_mask = self.env.legal_mask(result.next_state)
            self.buffer.push(
                Transition(
                    state=obs,
                    action=action_idx,
                    reward=result.reward,
                    next_state=next_obs,
                    next_mask=next_mask,
                    done=result.done,
                )
            )
            episode_return += float(self.agent.w @ result.reward)
            history.areas.append(result.info["area"])
            history.delays.append(result.info["delay"])
            history.epsilon_trace.append(epsilon)
            history.env_steps += 1

            if result.done:
                history.episode_returns.append(episode_return)
                episode_return = 0.0
                state = self.env.reset()
                obs = self.env.observe(state)
                mask = self.env.legal_mask(state)
            else:
                state = result.next_state
                obs = next_obs
                mask = next_mask

            if len(self.buffer) >= cfg.warmup_steps and step % cfg.learn_every == 0:
                loss = self.agent.train_step(self.buffer.sample(cfg.batch_size))
                history.losses.append(loss)
                history.gradient_steps += 1

        return history

    # ------------------------------------------------------------------
    # Batched collection (E lockstep environments)
    # ------------------------------------------------------------------

    def _run_vector(self, total: int, schedule: LinearSchedule) -> TrainingHistory:
        cfg = self.config
        venv: VectorPrefixEnv = self.env
        num_envs = venv.num_envs
        history = TrainingHistory()

        venv.reset()
        obs = venv.observe()
        masks = venv.legal_masks()
        episode_returns = [0.0] * num_envs
        gradient_debt = 0.0

        while history.env_steps < total:
            epsilon = schedule(history.env_steps)
            action_idxs = self.agent.act_batch(obs, masks, epsilon=epsilon)
            results = venv.step(action_idxs)
            # The per-graph feature/mask memo makes these stacks cheap for
            # replicas whose state was already observed this round.
            next_obs = venv.observe()
            next_masks = venv.legal_masks()

            for i, result in enumerate(results):
                if history.env_steps >= total:
                    # The round stepped every replica, but the budget is
                    # exact: drop the overshoot (the replicas did advance;
                    # their archives keep those evaluations).
                    break
                # For terminal replicas the vector env has already reset,
                # so featurize the terminal state directly for the buffer.
                if result.done:
                    t_obs = self.env.envs[i].observe(result.next_state)
                    t_mask = self.env.envs[i].legal_mask(result.next_state)
                else:
                    t_obs = next_obs[i]
                    t_mask = next_masks[i]
                self.buffer.push(
                    Transition(
                        state=obs[i],
                        action=int(action_idxs[i]),
                        reward=result.reward,
                        next_state=t_obs,
                        next_mask=t_mask,
                        done=result.done,
                    )
                )
                episode_returns[i] += float(self.agent.w @ result.reward)
                history.areas.append(result.info["area"])
                history.delays.append(result.info["delay"])
                history.epsilon_trace.append(epsilon)
                history.env_steps += 1
                if result.done:
                    history.episode_returns.append(episode_returns[i])
                    episode_returns[i] = 0.0

            obs = next_obs
            masks = next_masks

            if len(self.buffer) >= cfg.warmup_steps:
                # One gradient step per learn_every env steps, matching the
                # sequential cadence in aggregate (fractional remainders
                # carry over between rounds).
                gradient_debt += num_envs / max(cfg.learn_every, 1)
                while gradient_debt >= 1.0:
                    loss = self.agent.train_step(self.buffer.sample(cfg.batch_size))
                    history.losses.append(loss)
                    history.gradient_steps += 1
                    gradient_debt -= 1.0

        return history
