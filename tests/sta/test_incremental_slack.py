"""Hypothesis property suite: incremental required/slack vs the full oracle.

Randomized move/revert sequences drive every ``TimingGraph`` mutation
class (resize with exact revert, commutative pin swap, buffer insert +
sink rewires, rewire-back + removal). After *every single move* the
incrementally repaired ``slack_all()`` must equal the full backward pass
of :func:`repro.sta.reference.analyze_timing_reference` — same keys,
same float values, including the +inf slacks off the constrained cone.
Querying after each move is the point: it forces the rank-descending
required-time worklist (not the cold full sweep) to produce the values.

The second property pins the area-recovery prune
(:meth:`TimingGraph.downsize_rejected`): whenever it claims a downsize
trial must be rejected, actually performing the trial yields ``wns < 0``
— i.e. the prune can never skip a move the reference would accept.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cells import nangate45
from repro.netlist import prefix_adder_netlist
from repro.prefix import REGULAR_STRUCTURES
from repro.sta import TimingGraph
from repro.sta.reference import analyze_timing_reference
from tests.conftest import random_walk_graph
from tests.sta.test_timing_graph import apply_random_move

LIB = nangate45()

STRUCTURES = sorted(REGULAR_STRUCTURES)


def make_netlist(n, structure, walk_seed):
    if structure == "random":
        graph = random_walk_graph(n, 18, np.random.default_rng(walk_seed))
    else:
        graph = REGULAR_STRUCTURES[structure](n)
    return prefix_adder_netlist(graph, LIB)


class TestIncrementalSlackAll:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.sampled_from([4, 8]),
        structure=st.sampled_from(STRUCTURES + ["random"]),
        target=st.sampled_from([0.05, 0.3, 2.0]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_slack_all_matches_reference_after_every_move(
        self, n, structure, target, seed
    ):
        nl = make_netlist(n, structure, seed)
        tg = TimingGraph(nl, target=target)
        rng = np.random.default_rng(seed)
        # Prime the cache so every later query exercises the worklist.
        assert tg.slack_all() == analyze_timing_reference(nl, target).slack
        for step in range(25):
            apply_random_move(tg, rng)
            want = analyze_timing_reference(nl, target)
            assert tg.slack_all() == want.slack, (structure, step)
            assert tg.wns == want.wns, (structure, step)

    @settings(max_examples=15, deadline=None)
    @given(
        structure=st.sampled_from(STRUCTURES),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_resize_revert_restores_slacks_exactly(self, structure, seed):
        nl = make_netlist(8, structure, seed)
        tg = TimingGraph(nl, target=0.3)
        rng = np.random.default_rng(seed)
        for _ in range(10):
            apply_random_move(tg, rng)
        before = tg.slack_all()
        names = sorted(nl.instances)
        name = names[int(rng.integers(len(names)))]
        old = nl.instances[name].cell
        bigger = LIB.next_size_up(old)
        if bigger is None:
            return
        tg.replace_cell(name, bigger)
        tg.slack_all()  # force the incremental repair of the trial state
        tg.replace_cell(name, old)
        assert tg.slack_all() == before

    def test_slack_all_is_slack_map(self):
        nl = make_netlist(8, "sklansky", 0)
        tg = TimingGraph(nl, target=0.3)
        assert tg.slack_all() == tg.slack_map()

    def test_fork_carries_backward_cache_for_same_target(self):
        nl = make_netlist(8, "brent_kung", 1)
        tg = TimingGraph(nl, target=0.3)
        tg.slack_all()
        same = tg.fork()
        assert same._required is not None
        retargeted = tg.fork(target=0.7)
        assert retargeted._required is None
        assert same.slack_all() == analyze_timing_reference(same.nl, 0.3).slack
        assert (
            retargeted.slack_all() == analyze_timing_reference(retargeted.nl, 0.7).slack
        )


class TestDownsizePrune:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.sampled_from([8, 16]),
        structure=st.sampled_from(STRUCTURES + ["random"]),
        relax=st.sampled_from([1.5, 2.5, 4.0]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_prune_never_claims_an_acceptable_move(self, n, structure, relax, seed):
        """Soundness: downsize_rejected(name, cell) == True implies the
        actual trial leaves wns < 0 (so the reference loop rejects it)."""
        nl = make_netlist(n, structure, seed)
        tg = TimingGraph(nl)
        # Upsize a random subset so downsizes exist — the state recovery
        # actually sees is post-sizing-pass.
        rng = np.random.default_rng(seed)
        for name in sorted(nl.instances):
            if rng.integers(2):
                bigger = nl.library.next_size_up(nl.instances[name].cell)
                if bigger is not None:
                    tg.replace_cell(name, bigger)
        # A met-mode state, like recovery sees after the relaxed targets.
        tg.target = tg.delay * relax
        pruned = tried = 0
        for name in sorted(nl.instances):
            inst = nl.instances[name]
            smaller = nl.library.next_size_down(inst.cell)
            if smaller is None:
                continue
            tried += 1
            if tg.downsize_rejected(name, smaller):
                pruned += 1
                old = inst.cell
                tg.replace_cell(name, smaller)
                assert tg.wns < 0, name
                tg.replace_cell(name, old)
        # Not a correctness requirement, but if nothing is ever tried the
        # property is vacuous — the library must offer downsizes.
        assert tried > 0

    def test_prune_fires_on_tight_met_state(self):
        """Liveness: at a barely-met target the prune proves real
        rejections (guards against a vacuously-False implementation)."""
        nl = make_netlist(16, "sklansky", 0)
        tg = TimingGraph(nl)
        for name in sorted(nl.instances):
            bigger = nl.library.next_size_up(nl.instances[name].cell)
            if bigger is not None:
                tg.replace_cell(name, bigger)
        tg.target = tg.delay * 1.001
        fired = 0
        for name in sorted(nl.instances):
            smaller = nl.library.next_size_down(nl.instances[name].cell)
            if smaller is not None and tg.downsize_rejected(name, smaller):
                fired += 1
        assert fired > 0

    def test_prune_requires_positive_margin(self):
        nl = make_netlist(8, "sklansky", 0)
        tg = TimingGraph(nl, target=1.0)
        name = sorted(nl.instances)[0]
        bigger = nl.library.next_size_up(nl.instances[name].cell)
        assert bigger is not None
        tg.replace_cell(name, bigger)
        smaller = nl.library.next_size_down(nl.instances[name].cell)
        assert smaller is not None
        # With an absurdly large margin nothing is ever provable.
        assert not tg.downsize_rejected(name, smaller, margin=1e9)
