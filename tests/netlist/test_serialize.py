"""Netlist dict round-trip: structure, determinism, library binding."""

from __future__ import annotations

import json

import pytest

from repro.cells import industrial8nm, nangate45
from repro.netlist.adder import prefix_adder_netlist
from repro.netlist.serialize import netlist_from_dict, netlist_to_dict
from repro.prefix import brent_kung, kogge_stone, sklansky
from repro.sta.timing import analyze_timing


@pytest.fixture(scope="module")
def library():
    return nangate45()


@pytest.mark.parametrize("ctor", [sklansky, brent_kung, kogge_stone])
def test_roundtrip_preserves_structure_and_timing(ctor, library):
    original = prefix_adder_netlist(ctor(8), library)
    rebuilt = netlist_from_dict(netlist_to_dict(original), library)
    rebuilt.validate()
    assert rebuilt.inputs == original.inputs
    assert rebuilt.outputs == original.outputs
    assert list(rebuilt.instances) == list(original.instances)  # insertion order
    assert rebuilt.area() == original.area()
    assert rebuilt.cell_histogram() == original.cell_histogram()
    # Timing must agree exactly: the optimizer's trajectory (and thus the
    # remote farm's byte-identical-curves guarantee) depends on it.
    assert analyze_timing(rebuilt).delay == analyze_timing(original).delay


def test_dict_is_json_safe_and_deterministic(library):
    netlist = prefix_adder_netlist(sklansky(4), library)
    one = json.dumps(netlist_to_dict(netlist), sort_keys=True)
    two = json.dumps(netlist_to_dict(netlist), sort_keys=True)
    assert one == two


def test_fresh_names_stay_unique_after_roundtrip(library):
    netlist = prefix_adder_netlist(sklansky(4), library)
    rebuilt = netlist_from_dict(netlist_to_dict(netlist), library)
    fresh = rebuilt.fresh_net()
    assert rebuilt.driver_of(fresh) is None
    assert fresh not in rebuilt.nets()


def test_library_mismatch_rejected(library):
    payload = netlist_to_dict(prefix_adder_netlist(sklansky(4), library))
    with pytest.raises(ValueError, match="built against library"):
        netlist_from_dict(payload, industrial8nm())


def test_unknown_version_rejected(library):
    payload = netlist_to_dict(prefix_adder_netlist(sklansky(4), library))
    payload["version"] = 99
    with pytest.raises(ValueError, match="version"):
        netlist_from_dict(payload, library)
