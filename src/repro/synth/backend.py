"""Pluggable evaluation backends: the one seam where curves come from.

Before this layer the repo had five divergent ways to turn a prefix graph
into an area-delay curve (evaluator-local cache, farm pool, remote farm,
the learner's cache service, the actor's write-through front). Every
consumer — :class:`repro.synth.SynthesisEvaluator`,
:class:`repro.env.VectorPrefixEnv`, :class:`repro.rl.Trainer`,
:class:`repro.rl.runtime.TrainingRuntime`,
:class:`repro.net.actor.RemoteActorWorker` — now talks to an
:class:`EvaluationBackend` instead, and dedup, routing and telemetry live
here, once.

All backends produce byte-identical curves for the same designs (every
path bottoms out in the same synthesis ladder) and report the same
:data:`STATS_KEYS` counter schema from :meth:`~EvaluationBackend.stats`:

- :class:`LocalBackend` — shared-cache lookup plus in-process synthesis
  (the default; exactly the traffic the pre-backend evaluator produced);
- :class:`FarmBackend` — the whole batch through a
  :class:`repro.distributed.SynthesisFarm` dispatch layer (local process
  pool or remote ``repro farm-worker`` daemons);
- :class:`ClusterBackend` — misses resolve through a learner's
  claim/lease cache service (:mod:`repro.synth.leases`), so concurrent
  actors never synthesize the same digest twice; designs this client is
  *leased* are synthesized locally or fanned out through an attached farm
  (``repro actor --farm``).
"""

from __future__ import annotations

import time

from repro import obs
from repro.prefix.serialize import graph_digest
from repro.store.api import make_store
from repro.synth.curve import AreaDelayCurve, synthesize_curve
from repro.synth.optimizer import Synthesizer

# The unified stats() schema every backend (and SynthesisFarm.stats(), and
# TrainingHistory.synthesis_stats) reports. "cache" is the backing cache's
# own counters ({"entries", "hits", "misses", "hit_rate"}) or None when the
# backend has no local view of one. Backends may add extension sub-dicts
# ("farm", "remote", "lease") but never rename these.
STATS_KEYS = (
    "backend",         # str: which backend produced the numbers
    "batches",         # evaluate_many calls served
    "designs",         # graphs requested (before any dedup)
    "unique_designs",  # after in-batch digest dedup
    "dedup_saved",     # designs - unique_designs
    "cache_hits",      # unique designs served from a cache (local or shared)
    "cache_misses",    # unique designs that missed every cache
    "synthesized",     # designs this backend actually synthesized
    "cache",           # backing-cache counters dict, or None
)


def cache_counters(cache) -> "dict | None":
    """The ``"cache"`` sub-dict of the stats schema for any cache-like."""
    if cache is None:
        return None
    hits = int(getattr(cache, "hits", 0))
    misses = int(getattr(cache, "misses", 0))
    lookups = hits + misses
    return {
        "entries": len(cache),
        "hits": hits,
        "misses": misses,
        "hit_rate": hits / lookups if lookups else 0.0,
    }


def encode_cache_state(store) -> dict:
    """Checkpoint-ready snapshot of any curve store (JSON-safe points).

    Thin wrapper over :meth:`repro.store.CurveStore.state_dict` — kept
    because the checkpoint format predates the protocol and every
    existing checkpoint carries this schema. Disk-backed stores encode
    ``entries=None`` (their contents are already durable on disk).
    """
    return store.state_dict()


def restore_cache_state(store, state: dict) -> None:
    """Inverse of :func:`encode_cache_state` (onto a live store)."""
    store.load_state_dict(state)


class EvaluationBackend:
    """Protocol + shared accounting for curve sources.

    Subclasses implement :meth:`_evaluate_unique` (digest-deduped graphs
    in, curves out, counters updated); :meth:`evaluate_many` handles the
    in-batch dedup and order restoration all backends share.
    """

    name = "backend"

    def __init__(self):
        self.batches = 0
        self.designs = 0
        self.unique_designs = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.synthesized = 0

    # -- the one entry point ---------------------------------------------

    def evaluate_many(self, graphs) -> "list[AreaDelayCurve]":
        """Curves for a batch of graphs; order matches the input.

        Duplicate graphs in one batch resolve to a single evaluation (RL
        batches repeat states constantly — the reason the paper caches).
        """
        graphs = list(graphs)
        self.batches += 1
        self.designs += len(graphs)
        order: "dict[bytes, int]" = {}
        unique = []
        for graph in graphs:
            key = graph.key()
            if key not in order:
                order[key] = len(unique)
                unique.append(graph)
        self.unique_designs += len(unique)
        obs.counter("backend.batches").inc()
        obs.counter("backend.designs").inc(len(graphs))
        obs.counter("backend.dedup_saved").inc(len(graphs) - len(unique))
        curves = self._evaluate_unique(unique) if unique else []
        return [curves[order[graph.key()]] for graph in graphs]

    def _evaluate_unique(self, graphs) -> "list[AreaDelayCurve]":
        raise NotImplementedError

    # -- identity ---------------------------------------------------------

    def share_token(self):
        """Identity of the state this backend resolves curves through.

        Two backends with the *same* token (``is``) serve byte-identical
        curves from shared state, so a vector environment may batch all
        replicas' evaluations through either one of them.
        """
        return self

    # -- telemetry / persistence ------------------------------------------

    def stats(self) -> dict:
        """Counters in the :data:`STATS_KEYS` schema."""
        return {
            "backend": self.name,
            "batches": self.batches,
            "designs": self.designs,
            "unique_designs": self.unique_designs,
            "dedup_saved": self.designs - self.unique_designs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "synthesized": self.synthesized,
            "cache": cache_counters(getattr(self, "cache", None)),
        }

    def counters_dict(self) -> dict:
        """Backend-local counters for checkpoints (cache state rides apart)."""
        return {
            "batches": self.batches,
            "designs": self.designs,
            "unique_designs": self.unique_designs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "synthesized": self.synthesized,
        }

    def load_counters(self, counters: dict) -> None:
        for key, value in counters.items():
            if hasattr(self, key):
                setattr(self, key, int(value))

    def state_dict(self) -> dict:
        """Checkpointable backend state (cache contents + counters)."""
        cache = getattr(self, "cache", None)
        return {
            "cache": encode_cache_state(cache) if cache is not None else None,
            "counters": [self.counters_dict()],
        }

    def load_state_dict(self, state: dict) -> None:
        cache = getattr(self, "cache", None)
        if cache is not None and state.get("cache") is not None:
            restore_cache_state(cache, state["cache"])
        counters = state.get("counters") or []
        if counters:
            self.load_counters(counters[0])

    def close(self) -> None:
        """Release any resources (pools, sockets); idempotent."""


class LocalBackend(EvaluationBackend):
    """Shared-cache lookup + in-process synthesis (the default backend).

    Produces exactly the cache traffic the pre-backend
    ``SynthesisEvaluator`` did — one ``get_many`` for a batch's unique
    designs, one ``put_many`` for the fresh ones — which is what keeps the
    CLI differential gate byte-identical.
    """

    name = "local"

    def __init__(self, library, synthesizer: "Synthesizer | None" = None, cache=None):
        super().__init__()
        self.library = library
        self.synthesizer = synthesizer if synthesizer is not None else Synthesizer()
        self.cache = cache if cache is not None else make_store()

    def _key(self, graph) -> tuple:
        return (graph_digest(graph), self.library.name, self.synthesizer.name)

    def _evaluate_unique(self, graphs):
        cached = self.cache.get_many([self._key(g) for g in graphs])
        fresh = []
        for i, (graph, value) in enumerate(zip(graphs, cached)):
            if value is None:
                curve = synthesize_curve(graph, self.library, self.synthesizer)
                cached[i] = curve
                fresh.append((self._key(graph), curve))
        self.cache_hits += len(graphs) - len(fresh)
        self.cache_misses += len(fresh)
        self.synthesized += len(fresh)
        obs.counter("backend.cache_hits").inc(len(graphs) - len(fresh))
        obs.counter("backend.synthesized").inc(len(fresh))
        if fresh:
            self.cache.put_many(fresh)
        return cached

    def share_token(self):
        return self.cache


class FarmBackend(EvaluationBackend):
    """Every batch through a :class:`~repro.distributed.SynthesisFarm`.

    The farm's dispatch layer (digest dedup, cache-aware routing, chunked
    submission to a warm pool or remote workers) subsumes this class's own
    dedup, so counters delegate to the farm's cumulative accounting. The
    farm must be *active* (a pool or remote workers) — the serial
    ``num_workers=0`` farm is the deliberately-naive benchmark reference
    and is rejected here.
    """

    def __init__(self, farm):
        super().__init__()
        if not farm.active:
            raise ValueError(
                "FarmBackend needs an active farm (a worker pool or remote "
                "workers); the serial reference farm stays a benchmark baseline"
            )
        if farm.cache is None:
            farm.cache = make_store()
        self.farm = farm

    @property
    def name(self) -> str:
        if self.farm.remote_workers is not None:
            return f"farm-remote[{len(self.farm.remote_workers)}]"
        return f"farm-pool[{self.farm.num_workers}]"

    @property
    def cache(self):
        return self.farm.cache

    def evaluate_many(self, graphs):
        # The farm dedups and accounts for the whole batch itself.
        return self.farm.evaluate_curves(list(graphs))

    def _evaluate_unique(self, graphs):  # pragma: no cover - evaluate_many overrides
        return self.farm.evaluate_curves(list(graphs))

    def stats(self) -> dict:
        return self.farm.stats()

    def counters_dict(self) -> dict:
        # Farm counters are checkpointed by the runtime's farm snapshot.
        return {}

    def share_token(self):
        return self.farm.cache

    def close(self) -> None:
        self.farm.close()


class ClusterBackend(EvaluationBackend):
    """Misses resolve through a learner's claim/lease cache service.

    A batch's unique designs are looked up in a local front LRU (absorbing
    this client's own repeats), then *claimed* at the shared service: each
    miss comes back as a value, a granted lease (synthesize it — locally,
    or through ``farm``) or "wait" (another client is synthesizing it; the
    re-claim *parks at the service* until the value arrives — long-poll,
    no client-side sleep). The result: across any number of concurrent
    clients, each unique digest is synthesized exactly once, cluster-wide.

    ``service`` needs ``claim(keys, counted=..., wait=..., wait_timeout=...)``
    and ``put(items, lease_ids=...)`` —
    :class:`repro.synth.leases.LocalServiceClient` in-process,
    :class:`repro.net.actor.RemoteCacheClient` over the wire. A service
    that predates long-poll claims (old claim signature, or a server
    whose replies lack the ``long_poll`` marker) is detected on the first
    wait and handled by a one-release compatibility shim that paces
    re-claims with ``poll_interval``; the mainline path never sleeps.

    One caveat: a *single* synthesis that outlives the service's
    ``lease_timeout`` can still be age-reclaimed and re-run by a waiter —
    duplicate work, never divergent results (curves are deterministic).
    Size the timeout above the slowest single design, exactly like the
    cluster heartbeat it rides on.
    """

    name = "cluster"

    def __init__(
        self,
        service,
        library,
        synthesizer: "Synthesizer | None" = None,
        farm=None,
        front_entries: int = 50_000,
        poll_interval: float = 0.02,
        wait_timeout: float = 300.0,
    ):
        super().__init__()
        self.service = service
        self.library = library
        self.synthesizer = synthesizer if synthesizer is not None else Synthesizer()
        if farm is not None and farm.cache is not None:
            raise ValueError(
                "the cluster backend's farm must be cacheless: the shared "
                "service is the cache, and a second one would shadow leases"
            )
        self.farm = farm
        self.front_entries = front_entries
        self.poll_interval = poll_interval
        self.wait_timeout = wait_timeout
        # Set when the service turns out to predate long-poll claims;
        # routes waits through the compatibility shim from then on.
        self._legacy_wait = False
        from collections import OrderedDict

        self._front: "OrderedDict[tuple, AreaDelayCurve]" = OrderedDict()
        # Lease-layer accounting on top of the shared schema.
        self.lease_granted = 0
        self.lease_waited = 0
        self.wait_hits = 0
        self.reclaimed_grants = 0

    def _key(self, graph) -> tuple:
        return (graph_digest(graph), self.library.name, self.synthesizer.name)

    # -- front LRU --------------------------------------------------------

    def _front_get(self, key: tuple):
        curve = self._front.get(key)
        if curve is not None:
            self._front.move_to_end(key)
        return curve

    def _front_put(self, key: tuple, curve) -> None:
        self._front[key] = curve
        self._front.move_to_end(key)
        while len(self._front) > self.front_entries:
            self._front.popitem(last=False)

    # -- synthesis of granted leases --------------------------------------

    def _synthesize(self, graphs) -> "list[AreaDelayCurve]":
        if self.farm is not None:
            return self.farm.evaluate_curves(list(graphs))
        return [synthesize_curve(g, self.library, self.synthesizer) for g in graphs]

    # -- waiting on other clients' leases ----------------------------------

    def _claim_waiting(self, keys, budget: float) -> "list[dict]":
        """One blocking re-claim of still-waited keys (long-poll).

        The claim parks at the service until a key resolves, a held lease
        ages out, or ``budget`` seconds pass — the client never sleeps.
        """
        if not self._legacy_wait:
            try:
                replies = self.service.claim(
                    keys, counted=False, wait=True, wait_timeout=budget
                )
            except TypeError:
                # Old claim signature (pre-long-poll in-process service).
                self._legacy_wait = True
            else:
                if getattr(self.service, "long_poll", True) is not False:
                    return replies
                # A wire server that answered instantly without the
                # long_poll marker: old protocol. Use this reply, shim
                # from the next round on.
                self._legacy_wait = True
                return replies
        # One-release compatibility shim for pre-long-poll services:
        # pace the uncounted re-claims client-side. Delete together with
        # the old server protocol.
        time.sleep(self.poll_interval)
        return self.service.claim(keys, counted=False)

    # -- the claim/lease loop ---------------------------------------------

    def _evaluate_unique(self, graphs):
        keys = [self._key(g) for g in graphs]
        curves: "list[AreaDelayCurve | None]" = [None] * len(graphs)
        pending = []
        for i, key in enumerate(keys):
            hit = self._front_get(key)
            if hit is not None:
                curves[i] = hit
                self.cache_hits += 1
            else:
                pending.append(i)
        if not pending:
            return curves

        granted: "list[tuple[int, int]]" = []  # (index, lease_id)
        waiting: "list[int]" = []
        replies = self.service.claim([keys[i] for i in pending], counted=True)
        for i, reply in zip(pending, replies):
            if "curve" in reply:
                curves[i] = reply["curve"]
                self._front_put(keys[i], reply["curve"])
                self.cache_hits += 1
            elif "lease" in reply:
                granted.append((i, reply["lease"]))
                self.cache_misses += 1
                self.lease_granted += 1
            else:
                waiting.append(i)
                self.lease_waited += 1

        deadline = time.monotonic() + self.wait_timeout
        # Publish leased results incrementally (per design in-process, per
        # farm-width batch with a farm) rather than after the whole grant:
        # waiters get values as they exist, and a long batch cannot hold a
        # lease past the service's age-reclamation window just because
        # *later* designs are still synthesizing.
        if self.farm is not None:
            publish_chunk = max(
                len(self.farm.remote_workers or []) or self.farm.num_workers, 1
            )
        else:
            publish_chunk = 1
        while granted or waiting:
            if granted:
                # Useful work first: synthesize what we own while other
                # clients compute what we are waiting on.
                batch, granted = granted[:publish_chunk], granted[publish_chunk:]
                idxs = [i for i, _lease in batch]
                fresh = self._synthesize([graphs[i] for i in idxs])
                self.synthesized += len(fresh)
                self.service.put(
                    [(keys[i], curve) for i, curve in zip(idxs, fresh)],
                    lease_ids=[lease for _i, lease in batch],
                )
                for i, curve in zip(idxs, fresh):
                    curves[i] = curve
                    self._front_put(keys[i], curve)
                continue
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise RuntimeError(
                    f"timed out after {self.wait_timeout:.0f}s waiting on "
                    f"{len(waiting)} leased design(s); the lease holder and "
                    "the service's reclamation both went silent"
                )
            replies = self._claim_waiting([keys[i] for i in waiting], budget)
            still = []
            for i, reply in zip(waiting, replies):
                if "curve" in reply:
                    curves[i] = reply["curve"]
                    self._front_put(keys[i], reply["curve"])
                    self.wait_hits += 1
                    self.cache_hits += 1
                elif "lease" in reply:
                    # The holder died; the service reclaimed the lease for us.
                    granted.append((i, reply["lease"]))
                    self.reclaimed_grants += 1
                    self.cache_misses += 1
                else:
                    still.append(i)
            waiting = still
        return curves

    # -- telemetry / persistence ------------------------------------------

    def stats(self) -> dict:
        out = {
            "backend": self.name,
            "batches": self.batches,
            "designs": self.designs,
            "unique_designs": self.unique_designs,
            "dedup_saved": self.designs - self.unique_designs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "synthesized": self.synthesized,
            "cache": {
                "entries": len(self._front),
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": (
                    self.cache_hits / (self.cache_hits + self.cache_misses)
                    if self.cache_hits + self.cache_misses
                    else 0.0
                ),
            },
            "lease": {
                "granted": self.lease_granted,
                "waited": self.lease_waited,
                "wait_hits": self.wait_hits,
                "reclaimed_grants": self.reclaimed_grants,
            },
        }
        if self.farm is not None:
            out["farm"] = self.farm.stats()
        return out

    def counters_dict(self) -> dict:
        counters = super().counters_dict()
        counters.update(
            lease_granted=self.lease_granted,
            lease_waited=self.lease_waited,
            wait_hits=self.wait_hits,
            reclaimed_grants=self.reclaimed_grants,
        )
        return counters

    def state_dict(self) -> dict:
        # The shared cache lives (and is checkpointed) learner-side; the
        # front is a transient accelerator, so only counters persist.
        return {"cache": None, "counters": [self.counters_dict()]}

    def load_state_dict(self, state: dict) -> None:
        counters = state.get("counters") or []
        if counters:
            self.load_counters(counters[0])

    def share_token(self):
        return self.service

    def close(self) -> None:
        if self.farm is not None:
            self.farm.close()
