"""Action space: (add | delete) x interior grid cells.

The paper's action space has size ``2 * (N-1)(N-2)/2``: an add and a delete
for every cell with ``LSB in [1, N-2]`` and ``MSB in [LSB+1, N-1]``. This
module provides the index <-> (kind, msb, lsb) bijection the agent and the
Q-network head share, plus legal-action masks ("redundant actions that get
undone by the legalization procedure" are forbidden, Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.prefix.graph import PrefixGraph

ADD = 0
DELETE = 1
_KIND_NAMES = {ADD: "add", DELETE: "delete"}


@dataclass(frozen=True)
class Action:
    """One environment action."""

    kind: int
    msb: int
    lsb: int

    def __repr__(self) -> str:
        return f"Action({_KIND_NAMES[self.kind]}, ({self.msb},{self.lsb}))"


class ActionSpace:
    """Fixed enumeration of all actions for width ``n``.

    Index layout: cell index ``c`` enumerates interior cells in (msb, lsb)
    row-major order; action index = ``kind * num_cells + c``. The Q-network
    emits a ``(4, N, N)`` map whose planes 0/1 are add-Q(area/delay) and
    2/3 delete-Q(area/delay); this class owns the flattening between the
    two layouts.
    """

    def __init__(self, n: int):
        if n < 3:
            raise ValueError(f"action space needs n >= 3, got n={n}")
        self.n = n
        self.cells: "list[tuple[int, int]]" = [
            (m, l) for m in range(2, n) for l in range(1, m)
        ]
        self.num_cells = len(self.cells)
        self._cell_index = {cell: i for i, cell in enumerate(self.cells)}
        self._rows = np.array([c[0] for c in self.cells])
        self._cols = np.array([c[1] for c in self.cells])
        # Per flat action index: the (plane, msb, lsb) coordinates of its
        # area and delay outputs in the (4, N, N) Q-map (see qmap_positions).
        kinds = np.repeat(np.array([ADD, DELETE]), self.num_cells)
        self._plane_area = 2 * kinds
        self._plane_delay = 2 * kinds + 1
        self._action_rows = np.tile(self._rows, 2)
        self._action_cols = np.tile(self._cols, 2)

    @property
    def size(self) -> int:
        """Total number of actions: ``2 * (N-1)(N-2)/2``."""
        return 2 * self.num_cells

    def action(self, index: int) -> Action:
        """Decode a flat action index."""
        if not 0 <= index < self.size:
            raise IndexError(f"action index {index} out of range [0, {self.size})")
        kind, cell = divmod(index, self.num_cells)
        m, l = self.cells[cell]
        return Action(kind=kind, msb=m, lsb=l)

    def index(self, action: Action) -> int:
        """Encode an action to its flat index."""
        return action.kind * self.num_cells + self._cell_index[(action.msb, action.lsb)]

    def legal_mask(self, graph: PrefixGraph) -> np.ndarray:
        """Boolean mask over flat indices: True where the action is legal.

        Cached per graph instance (masks depend only on the immutable
        grid/minlist); the result is read-only — copy before mutating.
        """
        if graph.n != self.n:
            raise ValueError(f"graph width {graph.n} != action space width {self.n}")
        return graph.cached("legal_mask", self._compute_legal_mask)

    def _compute_legal_mask(self, graph: PrefixGraph) -> np.ndarray:
        mask = np.empty(self.size, dtype=bool)
        np.logical_not(graph.grid[self._rows, self._cols], out=mask[: self.num_cells])
        mask[self.num_cells :] = graph.minlist()[self._rows, self._cols]
        mask.setflags(write=False)
        return mask

    def legal_actions(self, graph: PrefixGraph) -> "list[Action]":
        """All legal actions for ``graph``."""
        mask = self.legal_mask(graph)
        return [self.action(i) for i in np.nonzero(mask)[0]]

    def apply(self, graph: PrefixGraph, action: Action) -> PrefixGraph:
        """Apply an action, returning the legalized successor graph."""
        if action.kind == ADD:
            return graph.add_node(action.msb, action.lsb)
        if action.kind == DELETE:
            return graph.delete_node(action.msb, action.lsb)
        raise ValueError(f"unknown action kind {action.kind}")

    def qmap_positions(self, index: int):
        """Q-map coordinates of an action's (area, delay) outputs.

        Returns ``((plane_area, msb, lsb), (plane_delay, msb, lsb))`` —
        the two cells of the ``(4, N, N)`` network output that this action
        reads/regresses.
        """
        if not 0 <= index < self.size:
            raise IndexError(f"action index {index} out of range [0, {self.size})")
        kind, cell = divmod(index, self.num_cells)
        m, l = self.cells[cell]
        if kind == ADD:
            return (0, m, l), (1, m, l)
        return (2, m, l), (3, m, l)

    def qmap_position_arrays(self, indices: np.ndarray):
        """Vectorized :meth:`qmap_positions` for an array of action indices.

        Returns ``(plane_area, plane_delay, msb, lsb)`` index arrays, each
        shaped like ``indices`` — ready for fancy-indexed gathers/scatters
        against a batch of ``(4, N, N)`` Q-maps.
        """
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= self.size):
            raise IndexError(f"action index out of range [0, {self.size})")
        return (
            self._plane_area[indices],
            self._plane_delay[indices],
            self._action_rows[indices],
            self._action_cols[indices],
        )

    def qmap_to_flat(self, qmap: np.ndarray) -> np.ndarray:
        """Flatten a ``(4, N, N)`` Q-map to per-action vectors.

        Returns shape ``(size, 2)``: column 0 = Q_area, column 1 = Q_delay.
        Planes: 0 = add/area, 1 = add/delay, 2 = delete/area, 3 = delete/delay.
        """
        if qmap.shape != (4, self.n, self.n):
            raise ValueError(f"expected (4,{self.n},{self.n}) Q-map, got {qmap.shape}")
        out = np.empty((self.size, 2), dtype=qmap.dtype)
        cells = qmap[:, self._rows, self._cols]  # (4, num_cells)
        out[: self.num_cells, 0] = cells[0]
        out[: self.num_cells, 1] = cells[1]
        out[self.num_cells :, 0] = cells[2]
        out[self.num_cells :, 1] = cells[3]
        return out

    def qmaps_to_flat(self, qmaps: np.ndarray) -> np.ndarray:
        """Batched :meth:`qmap_to_flat`: ``(B, 4, N, N) -> (B, size, 2)``."""
        if qmaps.ndim != 4 or qmaps.shape[1:] != (4, self.n, self.n):
            raise ValueError(
                f"expected (B,4,{self.n},{self.n}) Q-maps, got {qmaps.shape}"
            )
        cells = qmaps[:, :, self._rows, self._cols]  # (B, 4, num_cells)
        out = np.empty((qmaps.shape[0], self.size, 2), dtype=qmaps.dtype)
        out[:, : self.num_cells, 0] = cells[:, 0]
        out[:, : self.num_cells, 1] = cells[:, 1]
        out[:, self.num_cells :, 0] = cells[:, 2]
        out[:, self.num_cells :, 1] = cells[:, 3]
        return out
