"""Fig. 4a — area-delay Pareto fronts, '32b' setting, open tool/library.

Paper result: PrefixRL adders Pareto-dominate Sklansky, Kogge-Stone,
Brent-Kung, SA [14] and PS [15] when everything is synthesized with
OpenPhySyn + Nangate45; max area saving 16.0% at matched delay, gains
largest at tight delay targets.

This bench regenerates every series end-to-end at the CI stand-in width
(REPRO_SCALE controls widths/steps; see DESIGN.md section 3 for the
scale-substitution rationale).
"""


from repro.baselines import pruned_search, sa_frontier
from repro.pareto import (
    area_savings_at_matched_delay,
    bin_by_delay,
    fraction_dominated,
    hypervolume_2d,
    pareto_front,
)
from repro.synth import AnalyticalEvaluator, synthesize_curve
from repro.utils import scatter_plot

from benchmarks.conftest import curve_series, frontier_design_series


def build_series(bundle, scale):
    n = bundle["n"]
    num_points = scale.delay_targets

    series = {}
    for name in ("sklansky", "kogge_stone", "brent_kung"):
        series[name] = curve_series(bundle["regular_curves"][name], num_points)

    # SA baseline: annealed on the analytical model (the paper notes SA
    # cannot afford synthesis in the loop), then its designs synthesized.
    sa_archive = sa_frontier(
        n,
        lambda wa, wd: AnalyticalEvaluator(wa, wd),
        weights=[0.2, 0.4, 0.6, 0.8],
        iterations_per_weight=scale.sa_iterations,
        seed=11,
    )
    sa_points = []
    for _, _, graph in sa_archive.entries()[:10]:
        curve = synthesize_curve(graph, bundle["library"], bundle["synthesizer"])
        sa_points.extend(curve_series(curve, num_points))
    series["SA"] = pareto_front(sa_points)

    # PS baseline: pruned exhaustive enumeration, all survivors synthesized.
    ps = pruned_search(n, AnalyticalEvaluator(), max_designs=60)
    ps_points = []
    for graph in sorted(ps.designs, key=lambda g: g.key())[:30]:
        curve = synthesize_curve(graph, bundle["library"], bundle["synthesizer"])
        ps_points.extend(curve_series(curve, num_points))
    series["PS"] = pareto_front(ps_points)

    rl_points, rl_designs = frontier_design_series(bundle, num_points)
    series["PrefixRL"] = rl_points
    return series, rl_designs


def test_fig4a_pareto_32b(benchmark, rl_sweep_small, scale):
    series, _ = benchmark.pedantic(
        build_series, args=(rl_sweep_small, scale), rounds=1, iterations=1
    )
    num_bins = scale.delay_targets
    binned = {name: bin_by_delay(pts, num_bins) for name, pts in series.items()}

    print(f"\n=== Fig. 4a: '32b' adder Pareto fronts (n={rl_sweep_small['n']}, "
          "openphysyn-like + nangate45-like) ===")
    print(scatter_plot(binned))

    rl = series["PrefixRL"]
    all_points = [p for pts in series.values() for p in pts]
    ref = (max(a for a, _ in all_points) * 1.05, max(d for _, d in all_points) * 1.05)
    print(f"{'series':>12s}  {'hypervolume':>12s}  {'front size':>10s}")
    for name, pts in series.items():
        print(f"{name:>12s}  {hypervolume_2d(pts, ref):12.4f}  {len(pareto_front(pts)):10d}")

    for name in ("sklansky", "kogge_stone", "brent_kung", "SA", "PS"):
        savings = area_savings_at_matched_delay(rl, series[name])
        if savings:
            best_delay, best = max(savings, key=lambda s: s[1])
            print(f"PrefixRL vs {name:>12s}: max area saving "
                  f"{best*100:+.1f}% at delay {best_delay:.4f} ns "
                  f"(dominated fraction {fraction_dominated(rl, series[name], eps=1e-9):.2f})")

    # Shape assertions (lenient, per DESIGN.md): the RL frontier's
    # hypervolume must at least match every baseline's, and it must show a
    # positive max area saving against each baseline frontier. PS gets 5%
    # slack at CI scale: at the stand-in width the pruned space is nearly
    # the whole space, so exhaustive PS is close to optimal — the paper's
    # decisive RL-over-PS gap appears at 32b/64b where pruning must cut
    # away most of the space (see EXPERIMENTS.md).
    rl_hv = hypervolume_2d(rl, ref)
    for name in ("sklansky", "kogge_stone", "brent_kung", "SA", "PS"):
        base_hv = hypervolume_2d(series[name], ref)
        slack = 0.95 if name == "PS" else 0.99
        assert rl_hv >= base_hv * slack, f"PrefixRL hypervolume below {name}"
        savings = area_savings_at_matched_delay(rl, series[name])
        assert savings and max(s for _, s in savings) > 0.0, (
            f"no positive matched-delay area saving vs {name}"
        )
    cache = rl_sweep_small["cache"]
    print(f"synthesis cache during sweep: {cache}")
