"""Hot-path throughput benchmark: features, trainer, synthesis, farm.

Measures the layers this repo's training loop touches per step and
writes the numbers to JSON:

1. ``graph_features`` throughput (graphs/sec) at n in {16, 32, 64} over a
   fixed corpus of regular structures and random-walk graphs;
2. ``Trainer.run`` environment-steps/sec at n in {16, 32} (plus, when the
   running tree supports them, the 8-env vectorized + float32 variants);
3. ``synthesize_curve`` throughput (graphs/sec) at n in {16, 32} — the
   paper's true cost center, the target of the incremental-STA engine;
4. ``sta_backward``: the same curves under a recovery-heavy synthesizer
   (``recovery_passes`` cranked up) so area recovery — slack queries
   after every trial downsize — dominates; this is the workload the
   incremental required-time worklist and the downsize prune exist for;
5. ``analytical``: raw analytical-delay evals/sec over the feature
   corpus plus the deep-ripple worst case (depth-bound fixpoint in old
   trees vs the level-bucketed sweep);
6. ``SynthesisFarm`` pool-vs-serial speedup on the Section V-C workload;
7. when the running tree has them: ``conv`` (tap-loop fast conv vs the
   im2col oracle at trainer batch shapes, fwd and fwd+bwd), ``inference``
   (shared batched-inference service: coalescing ratio and forwards saved
   under concurrent actor clients, honest 1-CPU accounting) and ``chaos``
   (failure-recovery cost: a severed actor link absorbed by the
   supervised reconnect loop vs an undisturbed run, plus the supervisor's
   respawn-dispatch overhead — recovery records, not speedup claims).

The script is deliberately restricted to APIs that exist in the seed tree
so the *same* workload can be measured before and after the optimization
PRs::

    # at the seed commit (e.g. in a worktree)
    PYTHONPATH=<seed>/src python benchmarks/bench_hotpath.py --output seed.json
    # at the previous release (for sections newer than the seed baseline)
    PYTHONPATH=<parent>/src python benchmarks/bench_hotpath.py --output parent.json
    # at HEAD, merging the recorded baselines and computing speedups
    PYTHONPATH=src python benchmarks/bench_hotpath.py \
        --baseline seed.json --parent-baseline parent.json \
        --output BENCH_hotpath.json

``--smoke`` runs a seconds-scale version (tiny widths, one trainer run,
no farm) for CI: it asserts the sections and speedup keys exist without
producing publishable numbers.

``--profile <section>`` runs one bench section under ``cProfile``
(stdlib only) and prints the top functions by cumulative time — the
quickest way to answer "what actually dominates synthesize_curve now";
combine with ``--smoke`` for a fast, non-publishable profile workload.

Corpus note: the random-walk graphs start from sklansky and the feature
corpus excludes the ripple structure at n > 8, matching the figure
benchmarks (``benchmarks/conftest.py`` notes ripple is off-scale there
too); deep ripple-like graphs bound the level analysis and are reported
separately in the per-width detail (``ripple_ms_per_graph``)."""

from __future__ import annotations

import argparse
import inspect
import json
import os
import platform
import re
import time

import numpy as np

from repro.cells import nangate45
from repro.distributed import SynthesisFarm
from repro.env import PrefixEnv, graph_features
from repro.prefix import PrefixGraph, REGULAR_STRUCTURES, ripple_carry, sklansky
from repro.rl import ScalarizedDoubleDQN, Trainer, TrainerConfig
from repro.synth import AnalyticalEvaluator, synthesize_curve

try:
    from repro.env import VectorPrefixEnv
except ImportError:  # seed tree: no vectorized environment yet
    VectorPrefixEnv = None

try:
    from repro.rl import RuntimeConfig, TrainingRuntime
except ImportError:  # seed/parent trees: no actor-learner runtime yet
    TrainingRuntime = None

try:
    import repro.net as repro_net
except ImportError:  # seed/parent trees: no network subsystem yet
    repro_net = None

try:  # seed/parent trees: no evaluation-backend layer yet
    from repro.synth import ClusterBackend  # noqa: F401

    BACKEND_AVAILABLE = True
except ImportError:
    BACKEND_AVAILABLE = False

try:  # seed/parent trees: no persistent curve store yet
    from repro.store import DiskStore
    from repro.synth import AreaDelayCurve

    STORE_AVAILABLE = True
except ImportError:
    STORE_AVAILABLE = False

try:  # seed/parent trees: no observability layer yet
    from repro import obs as repro_obs

    OBS_AVAILABLE = True
except ImportError:
    OBS_AVAILABLE = False

try:  # older trees: no configurable synthesizer (recovery_passes) yet
    from repro.synth import Synthesizer
except ImportError:
    Synthesizer = None

try:  # older trees: no standalone analytical model yet
    from repro.analytical import analytical_delay
except ImportError:
    analytical_delay = None

from repro.nn import functional as nn_functional

# Seed/parent trees: conv2d_forward has no fast path yet.
CONV_FAST_AVAILABLE = (
    "fast" in inspect.signature(nn_functional.conv2d_forward).parameters
)
INFERENCE_AVAILABLE = repro_net is not None and hasattr(repro_net, "InferenceServer")

AGENT_HAS_DTYPE = "dtype" in inspect.signature(ScalarizedDoubleDQN.__init__).parameters

FEATURE_WIDTHS = (16, 32, 64)
TRAINER_WIDTHS = (16, 32)
TRAINER_STEPS = 160
TRAINER_CONFIG = dict(batch_size=16, warmup_steps=32, learn_every=1)
NUM_VECTOR_ENVS = 8
SYNTHESIS_WIDTHS = (16, 32)
SYNTHESIS_REPEATS = {16: 3, 32: 1}
STA_WIDTHS = (16, 32)
STA_RECOVERY_PASSES = 4         # recovery-heavy: the backward pass dominates
STA_REPEATS = {16: 3, 32: 1}
STA_ROUNDS = 2                  # best-of timing rounds (noise guard)
ANALYTICAL_WIDTHS = (32, 64)
ANALYTICAL_REPS = 300           # target analytical_delay calls per width
ANALYTICAL_RIPPLE_REPS = 100    # deep-ripple worst-case calls
FARM_WIDTH = 16
FARM_WORKERS = 4
FARM_REPEATS = 3
RUNTIME_WIDTH = 16
RUNTIME_STEPS = 96
RUNTIME_ROUNDS = 3
RUNTIME_ACTORS = 2
RUNTIME_ENVS_PER_ACTOR = 4
RUNTIME_HORIZON = 8
RUNTIME_NET = dict(blocks=2, channels=16)
RUNTIME_CONFIG = dict(
    batch_size=16, warmup_steps=16, learn_every=8, epsilon_anneal_frac=0.3
)
RUNTIME_PUBLISH_EVERY = 4
CLUSTER_WIDTH = 16
CLUSTER_PROTOCOL_BATCH = 8      # transitions per measured wire frame
CLUSTER_PROTOCOL_ITERS = 200
CLUSTER_PREPARED_ROUNDS = 3
BACKEND_WIDTH = 16
BACKEND_ROUNDS = 3
BACKEND_ACTORS = 2              # concurrent clients over one shared cache
CONV_WIDTHS = (16, 32)
CONV_BATCH = 16                 # the trainer's sampled batch size
CONV_CHANNELS = 16              # a residual-block conv at RUNTIME_NET width
CONV_ROUNDS = 3
CONV_REPS = 3                   # passes averaged inside one timing
INFERENCE_WIDTH = 16
INFERENCE_CLIENTS = 4           # concurrent actors sharing the server
INFERENCE_REQUESTS = 8          # act requests per client
INFERENCE_ROWS = 4              # env replicas per request (exploit rows)
INFERENCE_ROUNDS = 3
CHAOS_WIDTH = 16
CHAOS_STEPS = 96
CHAOS_ROUNDS = 2                # interleaved clean/severed run pairs
STORE_ENTRIES = 512             # curves per store round
STORE_POINTS = 8                # frontier points per stored curve
STORE_ROUNDS = 3
STORE_SYNTH_WIDTH = 16
STORE_SYNTH_GRAPHS = 4          # synthesize_curve calls timed for the ratio
OBS_ROUNDS = 4000               # synthetic actor rounds per repeat
OBS_REPEATS = 5                 # interleaved bare/instrumented repeats


def random_walk_grid(n: int, steps: int, rng: np.random.Generator) -> np.ndarray:
    """Deterministic random legal graph (API identical in seed and HEAD)."""
    g = sklansky(n)
    for _ in range(steps):
        actions = [("add", m, l) for m in range(n) for l in range(1, m) if g.can_add(m, l)]
        actions += [("del", m, l) for m in range(n) for l in range(1, m) if g.can_delete(m, l)]
        if not actions:
            break
        kind, m, l = actions[int(rng.integers(len(actions)))]
        g = g.add_node(m, l) if kind == "add" else g.delete_node(m, l)
    return np.array(g.grid)


def feature_corpus(n: int) -> "list[np.ndarray]":
    rng = np.random.default_rng(1234)
    grids = [
        np.array(ctor(n).grid)
        for name, ctor in REGULAR_STRUCTURES.items()
        if not (name == "ripple" and n > 8)
    ]
    grids += [random_walk_grid(n, 12, rng) for _ in range(4)]
    return grids


def bench_features() -> dict:
    out = {}
    for n in FEATURE_WIDTHS:
        grids = feature_corpus(n)
        # Warm numpy / imports off the clock.
        for grid in grids:
            graph_features(PrefixGraph(grid, _validated=True))
        reps = max(1, int(200 // len(grids)))
        start = time.perf_counter()
        for _ in range(reps):
            for grid in grids:
                graph_features(PrefixGraph(grid, _validated=True))
        wall = time.perf_counter() - start
        calls = reps * len(grids)
        # Ripple separately: the deep-graph worst case for level analysis.
        rip = np.array(ripple_carry(n).grid)
        start = time.perf_counter()
        for _ in range(50):
            graph_features(PrefixGraph(rip, _validated=True))
        rip_wall = time.perf_counter() - start
        out[str(n)] = {
            "corpus_size": len(grids),
            "graphs_per_sec": calls / wall,
            "ms_per_graph": wall / calls * 1000,
            "ripple_ms_per_graph": rip_wall / 50 * 1000,
        }
        print(f"features n={n}: {calls / wall:8.1f} graphs/s "
              f"({wall / calls * 1000:.3f} ms; ripple {rip_wall / 50 * 1000:.3f} ms)")
    return out


def _trainer_throughput(n: int, env, dtype=None) -> float:
    kwargs = dict(blocks=1, channels=8, rng=0)
    if dtype is not None:
        kwargs["dtype"] = dtype
    agent = ScalarizedDoubleDQN(n, **kwargs)
    trainer = Trainer(env, agent, TrainerConfig(steps=TRAINER_STEPS, **TRAINER_CONFIG), rng=0)
    start = time.perf_counter()
    history = trainer.run()
    wall = time.perf_counter() - start
    return history.env_steps / wall


def bench_trainer() -> dict:
    out = {}
    for n in TRAINER_WIDTHS:
        row = {}
        env = PrefixEnv(n, AnalyticalEvaluator(), horizon=24, rng=0)
        row["single_env_steps_per_sec"] = _trainer_throughput(n, env)
        if VectorPrefixEnv is not None:
            venv = VectorPrefixEnv.make(
                n, AnalyticalEvaluator, num_envs=NUM_VECTOR_ENVS, horizon=24, seed=0
            )
            row["vector8_steps_per_sec"] = _trainer_throughput(n, venv)
            if AGENT_HAS_DTYPE:
                venv = VectorPrefixEnv.make(
                    n, AnalyticalEvaluator, num_envs=NUM_VECTOR_ENVS, horizon=24, seed=0
                )
                row["vector8_f32_steps_per_sec"] = _trainer_throughput(n, venv, dtype=np.float32)
        out[str(n)] = row
        print(f"trainer n={n}: " + ", ".join(f"{k}={v:.2f}" for k, v in row.items()))
    return out


def synthesis_corpus(n: int) -> "list[PrefixGraph]":
    rng = np.random.default_rng(99)
    graphs = [
        ctor(n)
        for name, ctor in REGULAR_STRUCTURES.items()
        if not (name == "ripple" and n > 8)
    ]
    graphs += [PrefixGraph(random_walk_grid(n, 10, rng), _validated=True) for _ in range(2)]
    return graphs


def bench_synthesis() -> dict:
    """``synthesize_curve`` throughput — the synthesis-in-the-loop cost center."""
    lib = nangate45()
    out = {}
    for n in SYNTHESIS_WIDTHS:
        graphs = synthesis_corpus(n)
        reps = SYNTHESIS_REPEATS[n]
        synthesize_curve(graphs[0], lib)  # warm scipy/library build off the clock
        start = time.perf_counter()
        for _ in range(reps):
            for g in graphs:
                synthesize_curve(g, lib)
        wall = time.perf_counter() - start
        calls = reps * len(graphs)
        out[str(n)] = {
            "corpus_size": len(graphs),
            "graphs_per_sec": calls / wall,
            "ms_per_graph": wall / calls * 1000,
        }
        print(f"synthesis n={n}: {calls / wall:6.2f} graphs/s ({wall / calls * 1000:.1f} ms)")
    return out


def bench_sta_backward() -> "dict | None":
    """Recovery-heavy ``synthesize_curve``: the backward-pass cost center.

    ``recovery_passes`` is cranked above the default so area recovery —
    a slack query after every trial downsize — dominates the run. This
    is the workload the incremental required-time worklist and the
    ``downsize_rejected`` prune were built for. Only parent-era APIs
    (``Synthesizer(recovery_passes=...)``) are used, so the identical
    section runs in the previous release's worktree and the vs-parent
    ratio is apples-to-apples.
    """
    if Synthesizer is None:
        return None
    lib = nangate45()
    synth = Synthesizer(recovery_passes=STA_RECOVERY_PASSES)
    out = {}
    for n in STA_WIDTHS:
        graphs = synthesis_corpus(n)
        reps = STA_REPEATS[n]
        synthesize_curve(graphs[0], lib, synth)  # warm off the clock
        best = float("inf")
        for _ in range(STA_ROUNDS):
            start = time.perf_counter()
            for _ in range(reps):
                for g in graphs:
                    synthesize_curve(g, lib, synth)
            best = min(best, time.perf_counter() - start)
        calls = reps * len(graphs)
        out[str(n)] = {
            "corpus_size": len(graphs),
            "recovery_passes": STA_RECOVERY_PASSES,
            "graphs_per_sec": calls / best,
            "ms_per_graph": best / calls * 1000,
        }
        print(f"sta_backward n={n} (rp={STA_RECOVERY_PASSES}): "
              f"{calls / best:6.2f} graphs/s ({best / calls * 1000:.1f} ms)")
    return out


def bench_analytical() -> "dict | None":
    """Raw analytical-delay sweeps, including the deep-ripple worst case.

    Measured on *warm* graph instances: in the training loop the env
    computes ``graph_features`` (which populates the per-instance
    level/parent caches) on the same ``PrefixGraph`` the evaluator then
    scores, so the marginal cost of ``analytical_delay`` is the sweep
    itself, not the cached precomputation.
    """
    if analytical_delay is None:
        return None
    out = {}
    for n in ANALYTICAL_WIDTHS:
        graphs = [PrefixGraph(grid, _validated=True) for grid in feature_corpus(n)]
        for g in graphs:  # warm numpy + per-instance caches off the clock
            analytical_delay(g)
        reps = max(1, int(ANALYTICAL_REPS // len(graphs)))
        start = time.perf_counter()
        for _ in range(reps):
            for g in graphs:
                analytical_delay(g)
        wall = time.perf_counter() - start
        calls = reps * len(graphs)
        rip = ripple_carry(n)
        analytical_delay(rip)
        start = time.perf_counter()
        for _ in range(ANALYTICAL_RIPPLE_REPS):
            analytical_delay(rip)
        rip_wall = time.perf_counter() - start
        out[str(n)] = {
            "corpus_size": len(graphs),
            "graphs_per_sec": calls / wall,
            "ms_per_graph": wall / calls * 1000,
            "ripple_ms_per_graph": rip_wall / ANALYTICAL_RIPPLE_REPS * 1000,
        }
        print(f"analytical n={n}: {calls / wall:8.1f} evals/s "
              f"({wall / calls * 1000:.3f} ms; ripple "
              f"{rip_wall / ANALYTICAL_RIPPLE_REPS * 1000:.3f} ms)")
    return out


def bench_farm() -> dict:
    graphs = [ctor(FARM_WIDTH) for ctor in REGULAR_STRUCTURES.values()] * FARM_REPEATS
    serial = SynthesisFarm("nangate45", num_workers=0)
    serial.evaluate_curves(graphs)
    with SynthesisFarm("nangate45", num_workers=FARM_WORKERS) as farm:
        farm.evaluate_curves(graphs)
        pool_stats = farm.last_stats
    speedup = serial.last_stats.wall_seconds / max(pool_stats.wall_seconds, 1e-9)
    out = {
        "num_graphs": len(graphs),
        "serial_seconds": serial.last_stats.wall_seconds,
        "pool_seconds": pool_stats.wall_seconds,
        "pool_mode": pool_stats.mode,
        "pool_speedup": speedup,
        "unique_graphs": getattr(pool_stats, "unique_graphs", None),
        "dispatched": getattr(pool_stats, "dispatched", None),
        "chunks": getattr(pool_stats, "chunks", None),
    }
    print(f"farm n={FARM_WIDTH}: serial {serial.last_stats.wall_seconds:.2f}s, "
          f"pool {pool_stats.wall_seconds:.2f}s -> {speedup:.2f}x")
    return out


def _runtime_serial_throughput() -> "tuple[float, int]":
    """The synchronous path: the same env count stepped one at a time.

    This is the loop a user writes without the vector/runtime machinery —
    per-env acting (one network forward per step), per-env synthesis
    through a shared cache, learner inline on the synchronous cadence.
    Uses only seed-tree APIs so it runs on every commit.
    """
    from repro.synth import SynthesisCache, SynthesisEvaluator
    from repro.rl import ReplayBuffer, Transition

    n = RUNTIME_WIDTH
    lib = nangate45()
    cache = SynthesisCache()
    num_envs = RUNTIME_ACTORS * RUNTIME_ENVS_PER_ACTOR
    config = TrainerConfig(steps=RUNTIME_STEPS, **RUNTIME_CONFIG)
    agent = ScalarizedDoubleDQN(n, rng=0, **RUNTIME_NET)
    envs = [
        PrefixEnv(n, SynthesisEvaluator(lib, cache=cache), horizon=RUNTIME_HORIZON, rng=i)
        for i in range(num_envs)
    ]
    buf = ReplayBuffer(config.buffer_capacity, rng=0)
    anneal = max(int(RUNTIME_STEPS * config.epsilon_anneal_frac), 1)
    start = time.perf_counter()
    obs = [env.observe(env.reset()) for env in envs]
    masks = [env.legal_mask() for env in envs]
    steps = 0
    while steps < RUNTIME_STEPS:
        frac = min(steps / anneal, 1.0)
        epsilon = config.epsilon_start + (config.epsilon_end - config.epsilon_start) * frac
        for i, env in enumerate(envs):
            if steps >= RUNTIME_STEPS:
                break
            action_idx = agent.act(obs[i], masks[i], epsilon=epsilon)
            result = env.step(env.action_space.action(action_idx))
            next_obs = env.observe(result.next_state)
            next_mask = env.legal_mask(result.next_state)
            buf.push(Transition(obs[i], action_idx, result.reward,
                                next_obs, next_mask, result.done))
            if result.done:
                state = env.reset()
                obs[i], masks[i] = env.observe(state), env.legal_mask(state)
            else:
                obs[i], masks[i] = next_obs, next_mask
            steps += 1
            if len(buf) >= config.warmup_steps and (steps - 1) % config.learn_every == 0:
                agent.train_step(buf.sample(config.batch_size))
    wall = time.perf_counter() - start
    return steps / wall, cache.misses


def _runtime_async_throughput() -> "tuple[float, int]":
    """The actor-learner runtime on the same workload and env count."""
    from repro.synth import SynthesisCache, SynthesisEvaluator

    n = RUNTIME_WIDTH
    lib = nangate45()
    cache = SynthesisCache()
    config = TrainerConfig(steps=RUNTIME_STEPS, **RUNTIME_CONFIG)
    agent = ScalarizedDoubleDQN(n, rng=0, **RUNTIME_NET)
    envs = [
        VectorPrefixEnv.make(
            n, lambda: SynthesisEvaluator(lib, cache=cache),
            num_envs=RUNTIME_ENVS_PER_ACTOR, horizon=RUNTIME_HORIZON,
            seed=i * RUNTIME_ENVS_PER_ACTOR,
        )
        for i in range(RUNTIME_ACTORS)
    ]
    runtime = TrainingRuntime(
        envs, agent, config,
        RuntimeConfig(
            mode="async", num_actors=RUNTIME_ACTORS,
            publish_every=RUNTIME_PUBLISH_EVERY,
        ),
        rng=0,
    )
    start = time.perf_counter()
    history = runtime.run()
    wall = time.perf_counter() - start
    return history.env_steps / wall, cache.misses


def bench_runtime() -> "dict | None":
    """Async actor-learner runtime vs the serial synchronous path.

    Interleaved rounds (serial, async, serial, async, ...), best-of per
    mode — the host drifts, so only interleaved measurements are
    comparable. Both modes step the same number of environments on the
    same synthesis-in-the-loop workload; the async side additionally
    reports its synthesis-miss count (batched ``evaluate_many`` dedup and
    cross-actor cache sharing do strictly less synthesis work). On this
    1-CPU container there is no latency to hide, so wall-clock lands at
    parity — the async payoff in steps/sec needs parallel hardware
    (multi-host actors, see ROADMAP).
    """
    if TrainingRuntime is None or VectorPrefixEnv is None:
        return None
    best = {"serial": 0.0, "async": 0.0}
    misses = {}
    for _ in range(RUNTIME_ROUNDS):
        for mode, fn in (("serial", _runtime_serial_throughput),
                         ("async", _runtime_async_throughput)):
            sps, miss = fn()
            best[mode] = max(best[mode], sps)
            misses[mode] = min(misses.get(mode, miss), miss)
    row = {
        "steps": RUNTIME_STEPS,
        "actors": RUNTIME_ACTORS,
        "envs_per_actor": RUNTIME_ENVS_PER_ACTOR,
        "rounds": RUNTIME_ROUNDS,
        "serial_steps_per_sec": best["serial"],
        "async_steps_per_sec": best["async"],
        "serial_synthesis_misses": misses["serial"],
        "async_synthesis_misses": misses["async"],
        "async_over_serial": best["async"] / max(best["serial"], 1e-9),
        "async_synthesis_work_saved": 1.0 - misses["async"] / max(misses["serial"], 1),
    }
    out = {str(RUNTIME_WIDTH): row}
    print(f"runtime n={RUNTIME_WIDTH}: serial {best['serial']:.2f} steps/s "
          f"({misses['serial']} misses), "
          f"async[{RUNTIME_ACTORS}x{RUNTIME_ENVS_PER_ACTOR}] {best['async']:.2f} "
          f"steps/s ({misses['async']} misses) -> {row['async_over_serial']:.2f}x "
          f"wall, {row['async_synthesis_work_saved']:.0%} less synthesis")
    return out


def _bench_protocol() -> dict:
    """Per-frame wire overhead over a real loopback socket.

    Measures the protocol's own cost (encode + frame + TCP loopback
    round trip + decode), for a PING and for a realistic transition-batch
    CALL, as best-of medians — this is pure overhead a cluster pays per
    round, reported as milliseconds (absolute, host-specific; no speedup
    claims).
    """
    import socket
    import threading

    from repro.net.protocol import CALL, REPLY, Connection, decode_payload, encode_payload

    n = CLUSTER_WIDTH
    k = CLUSTER_PROTOCOL_BATCH
    rng = np.random.default_rng(0)
    batch = {
        "epsilon": 0.5,
        "states": rng.random((k, 4, n, n)),
        "actions": np.arange(k),
        "rewards": rng.random((k, 2)),
        "next_states": rng.random((k, 4, n, n)),
        "next_masks": np.ones((k, 2 * n * n), dtype=bool),
        "dones": np.zeros(k, dtype=bool),
        "areas": rng.random(k),
        "delays": rng.random(k),
    }
    payload = encode_payload(batch)

    start = time.perf_counter()
    for _ in range(CLUSTER_PROTOCOL_ITERS):
        encode_payload(batch)
    encode_ms = (time.perf_counter() - start) / CLUSTER_PROTOCOL_ITERS * 1000
    start = time.perf_counter()
    for _ in range(CLUSTER_PROTOCOL_ITERS):
        decode_payload(payload)
    decode_ms = (time.perf_counter() - start) / CLUSTER_PROTOCOL_ITERS * 1000

    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)

    def echo():
        sock, _ = listener.accept()
        conn = Connection(sock, timeout=30.0)
        try:
            while True:
                ftype, _body = conn.recv()
                if ftype == CALL:
                    conn.send(REPLY, {"ok": True})
                elif ftype == 4:  # PING
                    conn.send(5)  # PONG
                else:
                    return
        except Exception:
            pass
        finally:
            conn.close()

    thread = threading.Thread(target=echo, daemon=True)
    thread.start()
    client = Connection(socket.create_connection(listener.getsockname()), timeout=30.0)

    client.ping()  # warm the path
    start = time.perf_counter()
    for _ in range(CLUSTER_PROTOCOL_ITERS):
        client.ping()
    ping_ms = (time.perf_counter() - start) / CLUSTER_PROTOCOL_ITERS * 1000

    client.call("noop", batch)
    iters = max(CLUSTER_PROTOCOL_ITERS // 4, 1)
    start = time.perf_counter()
    for _ in range(iters):
        client.call("noop", batch)
    batch_ms = (time.perf_counter() - start) / iters * 1000

    client.close(bye=True)
    listener.close()
    thread.join(timeout=5)
    return {
        "batch_transitions": k,
        "batch_payload_bytes": len(payload),
        "payload_encode_ms": encode_ms,
        "payload_decode_ms": decode_ms,
        "ping_roundtrip_ms": ping_ms,
        "batch_roundtrip_ms": batch_ms,
    }


def _bench_prepared() -> dict:
    """Worker-side setup cost: shipped prepared netlists vs graph JSON.

    Interleaved rounds against a fresh worker per round (prepared cache
    off, so repeats do not contaminate the comparison); the worker's own
    clock separates obtaining the Netlist (the part prepared shipping
    removes) from the optimize ladder (identical in both modes). Best-of
    per mode. The saving is *worker-side* work moved to the dispatcher —
    a win when workers are the scarce resource (the paper's farm), not a
    wall-clock win on this 1-CPU host.
    """
    from repro.distributed import SynthesisFarm
    from repro.net import FarmWorkerServer

    graphs = synthesis_corpus(CLUSTER_WIDTH)
    best = {"prepared": float("inf"), "json": float("inf")}
    opt_ms = float("inf")
    for _ in range(CLUSTER_PREPARED_ROUNDS):
        for mode, ship in (("prepared", True), ("json", False)):
            server = FarmWorkerServer(("127.0.0.1", 0), prepared_cache_entries=0)
            server.start()
            farm = SynthesisFarm(
                "nangate45",
                num_workers=0,
                remote_workers=[server.address],
                ship_prepared=ship,
            )
            try:
                farm.evaluate_curves(graphs)
                stats = farm.last_stats
                per_task = stats.worker_setup_seconds / max(stats.dispatched, 1)
                best[mode] = min(best[mode], per_task * 1000)
                opt_ms = min(opt_ms, stats.worker_opt_seconds / max(stats.dispatched, 1) * 1000)
            finally:
                farm.close()
                server.stop()
    saved = 1.0 - best["prepared"] / best["json"] if best["json"] > 0 else 0.0
    return {
        "corpus_size": len(graphs),
        "worker_setup_ms_json": best["json"],
        "worker_setup_ms_prepared": best["prepared"],
        "worker_opt_ms": opt_ms,
        "prepared_setup_saved": saved,
    }


def _backend_contention_run(lease: bool) -> "tuple[int, int]":
    """Two clients evaluate the same design set concurrently over one
    shared cache; returns (total syntheses, unique designs).

    ``lease=False`` is the dedup-only baseline (PR 4's shape): both
    clients look up, both miss, both synthesize — the duplicate work the
    shared cache alone cannot prevent. ``lease=True`` routes the same
    batches through the claim/lease service: one client wins each lease,
    the other waits for the value, so cluster-wide work is exactly one
    synthesis per unique digest regardless of interleaving.
    """
    import threading

    from repro.synth import (
        ClusterBackend,
        LocalBackend,
        LocalServiceClient,
        SharedCacheService,
        SynthesisCache,
    )

    lib = nangate45()
    graphs = synthesis_corpus(BACKEND_WIDTH)
    unique = len({g.key() for g in graphs})
    if lease:
        service = SharedCacheService(SynthesisCache())
        backends = [
            ClusterBackend(
                LocalServiceClient(service, i), lib, poll_interval=0.002
            )
            for i in range(BACKEND_ACTORS)
        ]
    else:
        cache = SynthesisCache()
        backends = [LocalBackend(lib, cache=cache) for _ in range(BACKEND_ACTORS)]
    barrier = threading.Barrier(BACKEND_ACTORS)
    errors = []

    def run(backend):
        try:
            barrier.wait()
            backend.evaluate_many(list(graphs))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(b,), daemon=True) for b in backends]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return sum(b.synthesized for b in backends), unique


def bench_backend() -> dict:
    """Claim/lease dedup: synthesis work saved under actor contention.

    Honest 1-CPU work-reduction numbers (interleaved best-of rounds, like
    the runtime/cluster sections): both modes do the same useful work;
    the recorded quantity is synthesis *runs*, not wall-clock — no
    speedup claim is made or implied on this host. The dedup-only
    baseline's count is scheduling-dependent (between 1x and 2x unique),
    so its best (lowest) round makes the saving a conservative floor.
    """
    best = {"dedup": float("inf"), "lease": float("inf")}
    unique = 0
    for _ in range(BACKEND_ROUNDS):
        for mode, lease in (("dedup", False), ("lease", True)):
            synths, unique = _backend_contention_run(lease)
            best[mode] = min(best[mode], synths)
    row = {
        "actors": BACKEND_ACTORS,
        "rounds": BACKEND_ROUNDS,
        "unique_designs": unique,
        "dedup_only_synthesized": best["dedup"],
        "lease_synthesized": best["lease"],
        "lease_synthesis_saved": 1.0 - best["lease"] / max(best["dedup"], 1),
    }
    out = {str(BACKEND_WIDTH): row}
    print(
        f"backend n={BACKEND_WIDTH}: {BACKEND_ACTORS} clients x {unique} unique "
        f"designs -> dedup-only {best['dedup']} syntheses, lease {best['lease']} "
        f"({row['lease_synthesis_saved']:.0%} less work)"
    )
    return out


def _cluster_train_throughput() -> "tuple[float, int]":
    """One cluster training run: learner + actor *subprocesses* on loopback.

    Same workload/env count as the serial reference. Wall clock includes
    actor-process spawn (honest: a cluster pays it); the synthesis-work
    number is the learner-side fulfilled-lease count, which equals the
    synthesis runs performed across all actor processes (the claim/lease
    protocol makes every synthesis a lease).
    """
    from repro.net import ClusterSpec, run_local_cluster

    config = TrainerConfig(steps=RUNTIME_STEPS, **RUNTIME_CONFIG)
    agent = ScalarizedDoubleDQN(RUNTIME_WIDTH, rng=0, **RUNTIME_NET)
    spec = ClusterSpec.for_agent(
        agent,
        horizon=RUNTIME_HORIZON,
        envs_per_actor=RUNTIME_ENVS_PER_ACTOR,
        library="nangate45",
        seed=0,
    )
    runtime = TrainingRuntime(
        None,
        agent,
        config,
        RuntimeConfig(
            mode="cluster",
            num_actors=RUNTIME_ACTORS,
            publish_every=RUNTIME_PUBLISH_EVERY,
        ),
        rng=0,
        cluster=spec,
    )
    start = time.perf_counter()
    history, _codes = run_local_cluster(runtime, num_actors=RUNTIME_ACTORS)
    wall = time.perf_counter() - start
    return history.env_steps / wall, history.synthesis_stats["synthesized"]


def bench_cluster() -> "dict | None":
    """The network subsystem's honest 1-CPU numbers.

    Interleaved serial-vs-cluster rounds like ``bench_runtime``; on one
    core the multi-process cluster *loses* wall-clock to spawn and wire
    overhead (recorded, not hidden) while doing measurably less synthesis
    work through the shared cache service — the steps/sec payoff needs
    real cores. Plus per-frame protocol costs and the prepared-design
    worker savings.
    """
    if repro_net is None or TrainingRuntime is None:
        return None
    best = {"serial": 0.0, "cluster": 0.0}
    misses = {}
    for _ in range(RUNTIME_ROUNDS):
        for mode, fn in (
            ("serial", _runtime_serial_throughput),
            ("cluster", _cluster_train_throughput),
        ):
            sps, miss = fn()
            best[mode] = max(best[mode], sps)
            misses[mode] = min(misses.get(mode, miss), miss)
    row = {
        "steps": RUNTIME_STEPS,
        "actors": RUNTIME_ACTORS,
        "envs_per_actor": RUNTIME_ENVS_PER_ACTOR,
        "rounds": RUNTIME_ROUNDS,
        "serial_steps_per_sec": best["serial"],
        "cluster_steps_per_sec": best["cluster"],
        "serial_synthesis_misses": misses["serial"],
        "cluster_synthesized": misses["cluster"],
        "cluster_over_serial": best["cluster"] / max(best["serial"], 1e-9),
        "cluster_synthesis_work_saved": 1.0 - misses["cluster"] / max(misses["serial"], 1),
        "protocol": _bench_protocol(),
        "prepared": _bench_prepared(),
    }
    out = {str(RUNTIME_WIDTH): row}
    print(
        f"cluster n={RUNTIME_WIDTH}: serial {best['serial']:.2f} steps/s "
        f"({misses['serial']} misses), cluster[{RUNTIME_ACTORS}proc"
        f"x{RUNTIME_ENVS_PER_ACTOR}] {best['cluster']:.2f} steps/s "
        f"({misses['cluster']} syntheses) -> {row['cluster_over_serial']:.2f}x wall, "
        f"{row['cluster_synthesis_work_saved']:.0%} less synthesis; "
        f"frame {row['protocol']['batch_roundtrip_ms']:.2f} ms, "
        f"prepared saves {row['prepared']['prepared_setup_saved']:.0%} worker setup"
    )
    return out


def bench_conv() -> "dict | None":
    """Tap-loop fast conv vs the im2col oracle at trainer batch shapes.

    Interleaved best-of rounds on the residual-block shape the train step
    actually runs (batch CONV_BATCH, CONV_CHANNELS -> CONV_CHANNELS, 3x3).
    The headline is the fwd+bwd (train-step) ratio: the tap-loop's big win
    is the backward pass, where the cached per-tap slabs replace the
    col2im scatter; forward-only is also recorded. Both paths are timed in
    the same process on the same arrays, so the ratio is host-drift-free.
    """
    if not CONV_FAST_AVAILABLE:
        return None
    F = nn_functional
    out = {}
    for n in CONV_WIDTHS:
        rng = np.random.default_rng(7)
        x = rng.standard_normal((CONV_BATCH, CONV_CHANNELS, n, n))
        weight = rng.standard_normal((CONV_CHANNELS, CONV_CHANNELS, 3, 3))
        bias = rng.standard_normal(CONV_CHANNELS)
        for fast in (False, True):  # warm both paths off the clock
            y, cache = F.conv2d_forward(x, weight, bias, fast=fast)
            F.conv2d_backward(y, cache)
        best = {k: float("inf") for k in
                ("im2col_fwd", "fast_fwd", "im2col_train", "fast_train")}
        for _ in range(CONV_ROUNDS):
            for name, fast in (("im2col", False), ("fast", True)):
                start = time.perf_counter()
                for _ in range(CONV_REPS):
                    F.conv2d_forward(x, weight, bias, fast=fast)
                fwd = (time.perf_counter() - start) / CONV_REPS
                start = time.perf_counter()
                for _ in range(CONV_REPS):
                    y, cache = F.conv2d_forward(x, weight, bias, fast=fast)
                    F.conv2d_backward(y, cache)
                train = (time.perf_counter() - start) / CONV_REPS
                best[f"{name}_fwd"] = min(best[f"{name}_fwd"], fwd)
                best[f"{name}_train"] = min(best[f"{name}_train"], train)
        row = {
            "batch": CONV_BATCH,
            "channels": CONV_CHANNELS,
            "rounds": CONV_ROUNDS,
            "im2col_fwd_ms": best["im2col_fwd"] * 1000,
            "fast_fwd_ms": best["fast_fwd"] * 1000,
            "im2col_train_ms": best["im2col_train"] * 1000,
            "fast_train_ms": best["fast_train"] * 1000,
            "fast_fwd_speedup": best["im2col_fwd"] / max(best["fast_fwd"], 1e-12),
            "fast_train_speedup": best["im2col_train"] / max(best["fast_train"], 1e-12),
        }
        out[str(n)] = row
        print(f"conv n={n} (B={CONV_BATCH}, C={CONV_CHANNELS}): "
              f"fwd {row['im2col_fwd_ms']:.2f} -> {row['fast_fwd_ms']:.2f} ms "
              f"({row['fast_fwd_speedup']:.2f}x), "
              f"fwd+bwd {row['im2col_train_ms']:.2f} -> {row['fast_train_ms']:.2f} ms "
              f"({row['fast_train_speedup']:.2f}x)")
    return out


def bench_inference() -> "dict | None":
    """Shared inference service: coalescing under concurrent actors.

    Honest 1-CPU accounting like the runtime/cluster sections: the
    recorded wins are the batch-coalescing ratio and the fraction of
    network forwards eliminated (many tiny GEMMs folded into fewer large
    ones) — *work* reduction, not wall-clock. The remote per-request
    latency (wire + micro-batch wait included) is recorded next to the
    local per-request cost so the overhead the service pays on loopback
    is visible, not hidden; it only turns into steps/sec on real parallel
    hardware where the actors' cores are free to step environments while
    the server computes.
    """
    if not INFERENCE_AVAILABLE:
        return None
    import threading

    from repro.distributed.pipeline import PolicyHub
    from repro.net import InferenceClient, InferenceServer

    n = INFERENCE_WIDTH
    agent = ScalarizedDoubleDQN(n, rng=0, **RUNTIME_NET)
    hub = PolicyHub(agent)
    rng = np.random.default_rng(0)
    feats = rng.random((INFERENCE_ROWS, 4, n, n))
    masks = np.ones((INFERENCE_ROWS, agent.actions.size), dtype=bool)
    w = agent.w
    local_net = agent.snapshot_network()
    total_requests = INFERENCE_CLIENTS * INFERENCE_REQUESTS

    best = {"local": float("inf"), "remote": float("inf")}
    best_stats = None
    for _ in range(INFERENCE_ROUNDS):
        # Local reference: every request is its own small forward — what
        # each actor does without the service.
        start = time.perf_counter()
        for _ in range(total_requests):
            qmaps = local_net.predict(feats)
            flat = agent.actions.qmaps_to_flat(qmaps)
            np.argmax(np.where(masks, flat @ w, -np.inf), axis=1)
        best["local"] = min(
            best["local"], (time.perf_counter() - start) / total_requests * 1000
        )

        server = InferenceServer(max_batch=64, max_wait=0.02)
        server.start()
        server.attach(hub, agent.snapshot_network(), agent.actions)
        clients = [InferenceClient(server.address) for _ in range(INFERENCE_CLIENTS)]
        barrier = threading.Barrier(INFERENCE_CLIENTS + 1)
        errors = []

        def run(client):
            try:
                barrier.wait()
                for _ in range(INFERENCE_REQUESTS):
                    if client.act_batch(feats, masks, w) is None:
                        raise RuntimeError("inference request fell back")
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(c,), daemon=True) for c in clients
        ]
        for t in threads:
            t.start()
        barrier.wait()
        start = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - start
        stats = server.stats_dict()
        for c in clients:
            c.close()
        server.stop()
        if errors:
            raise errors[0]
        per_request = wall / total_requests * 1000
        if per_request < best["remote"]:
            best["remote"] = per_request
            best_stats = stats

    row = {
        "clients": INFERENCE_CLIENTS,
        "requests_per_client": INFERENCE_REQUESTS,
        "rows_per_request": INFERENCE_ROWS,
        "rounds": INFERENCE_ROUNDS,
        "local_request_ms": best["local"],
        "remote_request_ms": best["remote"],
        "remote_over_local": best["remote"] / max(best["local"], 1e-9),
        "batches": best_stats["batches"],
        "requests": best_stats["requests"],
        "served_rows": best_stats["rows"],
        "max_coalesced_rows": best_stats["max_coalesced"],
        "coalescing_ratio": best_stats["coalescing"],
        "forwards_saved": 1.0 - best_stats["batches"] / max(best_stats["requests"], 1),
    }
    out = {str(n): row}
    print(
        f"inference n={n}: {INFERENCE_CLIENTS} clients x {INFERENCE_REQUESTS} reqs "
        f"x {INFERENCE_ROWS} rows -> {row['batches']} forwards "
        f"(coalescing {row['coalescing_ratio']:.2f}, "
        f"{row['forwards_saved']:.0%} forwards saved); "
        f"request {row['local_request_ms']:.2f} ms local, "
        f"{row['remote_request_ms']:.2f} ms via server"
    )
    return out


CHAOS_AVAILABLE = (
    repro_net is not None
    and hasattr(repro_net, "ChaosProxy")
    and TrainingRuntime is not None
)


def _chaos_train_run(sever: bool) -> "tuple[float, dict, dict]":
    """One in-process cluster run with the actor behind a chaos proxy.

    Returns ``(wall_seconds, actor_stats, membership_stats)``. With
    ``sever`` the proxy cuts every link once the actor has a couple of
    rounds in flight; the supervised reconnect loop redials through the
    proxy and rejoins its session — the run reaches the full step budget
    either way (recovery never costs steps, only wall-clock).
    """
    import threading

    from repro.net import ChaosProxy, ClusterSpec, RemoteActorWorker, wait_until

    config = TrainerConfig(steps=CHAOS_STEPS, **RUNTIME_CONFIG)
    agent = ScalarizedDoubleDQN(CHAOS_WIDTH, rng=0, **RUNTIME_NET)
    spec = ClusterSpec.for_agent(
        agent,
        horizon=RUNTIME_HORIZON,
        envs_per_actor=RUNTIME_ENVS_PER_ACTOR,
        library="nangate45",
        seed=0,
    )
    runtime = TrainingRuntime(
        None,
        agent,
        config,
        RuntimeConfig(
            mode="cluster", num_actors=1, publish_every=RUNTIME_PUBLISH_EVERY
        ),
        rng=0,
        cluster=spec,
    )
    address = runtime.bind()
    proxy = ChaosProxy(address).start()
    worker = RemoteActorWorker(proxy.address, reconnect_base=0.05, reconnect_cap=0.2)
    stats = {}
    thread = threading.Thread(
        target=lambda: stats.update(a=worker.run()), daemon=True
    )
    thread.start()
    saboteur = None
    if sever:

        def chaos():
            wait_until(
                lambda: worker.rounds >= 2,
                timeout=300.0,
                message="the actor to complete two rounds",
            )
            proxy.sever()

        saboteur = threading.Thread(target=chaos, daemon=True)
        saboteur.start()
    start = time.perf_counter()
    history = runtime.run()
    wall = time.perf_counter() - start
    thread.join(timeout=60)
    if saboteur is not None:
        saboteur.join(timeout=60)
    proxy.stop()
    assert history.env_steps == CHAOS_STEPS, "chaos run lost steps"
    return wall, stats["a"], runtime.membership_stats


def _bench_respawn_dispatch() -> float:
    """Supervisor overhead: notice a dead child and launch its successor.

    One ``poll_once`` pass over an already-dead child — death detection
    plus the replacement ``Popen``; the milliseconds a crash costs the
    fleet on top of the replacement's own startup.
    """
    import subprocess
    import sys

    from repro.net import FleetSupervisor

    crashed = subprocess.Popen([sys.executable, "-c", "raise SystemExit(1)"])
    crashed.wait()
    sup = FleetSupervisor(restart_budget=1)
    sup.watch(
        "child",
        crashed,
        respawn=lambda: subprocess.Popen([sys.executable, "-c", "raise SystemExit(0)"]),
    )
    start = time.perf_counter()
    sup.poll_once()
    dispatch_ms = (time.perf_counter() - start) * 1000
    replacement = sup.procs()[0]
    replacement.wait()
    return dispatch_ms


def bench_chaos() -> "dict | None":
    """Failure-recovery cost: a severed actor link vs an undisturbed run.

    Interleaved clean/severed pairs (both through the same chaos proxy,
    so the proxy's forwarding cost cancels), best-of per mode. The
    recorded quantities are *recovery* records, not speedups: the
    wall-clock ratio severed-over-clean (backoff + redial + the lost
    round's re-generation), the actor's own reconnect accounting, and the
    learner-side rejoin count proving the session actually resumed. All
    runs must reach the full step budget — recovery that drops steps
    would be a correctness bug, not a slow run.
    """
    if not CHAOS_AVAILABLE:
        return None
    best = {"clean": float("inf"), "severed": float("inf")}
    recovery = None
    for _ in range(CHAOS_ROUNDS):
        for mode, sever in (("clean", False), ("severed", True)):
            wall, stats, membership = _chaos_train_run(sever)
            if wall < best[mode]:
                best[mode] = wall
                if sever:
                    recovery = (stats, membership)
    stats, membership = recovery
    row = {
        "steps": CHAOS_STEPS,
        "envs_per_actor": RUNTIME_ENVS_PER_ACTOR,
        "rounds": CHAOS_ROUNDS,
        "clean_wall_seconds": best["clean"],
        "severed_wall_seconds": best["severed"],
        "severed_over_clean_wall": best["severed"] / max(best["clean"], 1e-9),
        "reconnects": stats["reconnects"],
        "rounds_lost": stats["rounds_lost"],
        "reconnect_backoff_seconds": stats["reconnect_seconds"],
        "learner_rejoins": membership["rejoins"],
        "respawn_dispatch_ms": _bench_respawn_dispatch(),
    }
    out = {str(CHAOS_WIDTH): row}
    print(
        f"chaos n={CHAOS_WIDTH}: clean {best['clean']:.2f}s, severed "
        f"{best['severed']:.2f}s -> {row['severed_over_clean_wall']:.2f}x wall "
        f"({stats['reconnects']} reconnects, {stats['rounds_lost']} rounds lost, "
        f"{stats['reconnect_seconds']:.2f}s backoff); respawn dispatch "
        f"{row['respawn_dispatch_ms']:.1f} ms"
    )
    return out


def _store_corpus() -> "list[tuple[tuple, AreaDelayCurve]]":
    entries = []
    for i in range(STORE_ENTRIES):
        points = [
            (0.05 * (j + 1) + 1e-4 * i, 100.0 + i - 10.0 * j)
            for j in range(STORE_POINTS)
        ]
        key = (f"digest-{i:08x}", "nangate45", "openphysyn")
        entries.append((key, AreaDelayCurve(points)))
    return entries


def bench_store() -> "dict | None":
    """Curve-store hit latency vs the synthesis a warm hit replaces.

    Best-of rounds over a throwaway store directory: append (write-
    through cost on the training path), cold reopen (segment replay a
    restarted cluster pays once), and warm ``get_many`` (the per-design
    cost of *not* re-synthesizing). The headline ratio is one warm disk
    hit against one ``synthesize_curve`` call on this host — a
    work-avoidance record, not a parallelism claim.
    """
    if not STORE_AVAILABLE:
        return None
    import tempfile

    entries = _store_corpus()
    keys = [key for key, _ in entries]
    best = {"append": float("inf"), "replay": float("inf"), "read": float("inf")}
    bytes_total = segments = 0
    for _ in range(STORE_ROUNDS):
        with tempfile.TemporaryDirectory() as root:
            store = DiskStore(root)
            start = time.perf_counter()
            store.put_many(entries)
            best["append"] = min(best["append"], time.perf_counter() - start)
            stats = store.stats()
            bytes_total, segments = stats["bytes"], stats["segments"]
            store.close()
            start = time.perf_counter()
            warm = DiskStore(root)
            best["replay"] = min(best["replay"], time.perf_counter() - start)
            start = time.perf_counter()
            got = warm.get_many(keys)
            best["read"] = min(best["read"], time.perf_counter() - start)
            warm.close()
            assert all(value is not None for value in got)
    lib = nangate45()
    graphs = synthesis_corpus(STORE_SYNTH_WIDTH)[:STORE_SYNTH_GRAPHS]
    synthesize_curve(graphs[0], lib)  # warm scipy/library build off the clock
    start = time.perf_counter()
    for g in graphs:
        synthesize_curve(g, lib)
    synth_ms = (time.perf_counter() - start) / len(graphs) * 1000
    n = len(entries)
    warm_us = best["read"] / n * 1e6
    row = {
        "entries": n,
        "points_per_curve": STORE_POINTS,
        "rounds": STORE_ROUNDS,
        "bytes_per_curve": bytes_total / n,
        "segments": segments,
        "append_us_per_curve": best["append"] / n * 1e6,
        "reopen_replay_ms": best["replay"] * 1000,
        "warm_read_us_per_curve": warm_us,
        "synthesis_ms_per_curve": synth_ms,
        "warm_read_over_synthesis": synth_ms * 1000 / max(warm_us, 1e-9),
    }
    print(
        f"store n={n}: append {row['append_us_per_curve']:.1f} us/curve, "
        f"reopen {row['reopen_replay_ms']:.1f} ms, warm read "
        f"{warm_us:.1f} us/curve vs synthesis {synth_ms:.1f} ms "
        f"-> {row['warm_read_over_synthesis']:.0f}x avoided"
    )
    return {str(n): row}


def bench_obs() -> "dict | None":
    """Overhead of the observability layer with ``--obs-dir`` off.

    A synthetic actor round carrying exactly the instrumentation the real
    one does — one outer span, three inner spans, two counter bumps, four
    histogram observes — against the same round with no obs calls at all.
    Events are unconfigured (the default), so spans only pay their
    perf_counter bookkeeping and metrics their per-thread cell bumps.
    Interleaved best-of; the recorded ratio is bare-over-instrumented
    wall-clock (1.0 = free; the target is > 0.98, under 2% overhead, on a
    round doing any real work at all — the synthetic work here is a few
    small matmuls, far cheaper than one synthesis call, so this is the
    overhead ceiling, not the typical case).
    """
    if not OBS_AVAILABLE:
        return None
    work = np.random.default_rng(0).standard_normal((48, 48))

    def round_bare() -> float:
        acc = float((work @ work).sum())
        acc += float((work @ work).sum())
        acc += float((work @ work).sum())
        acc += float((work @ work).sum())
        return acc

    def round_instrumented() -> float:
        with repro_obs.span("bench.round") as round_span:
            with repro_obs.span("bench.act") as act_span:
                acc = float((work @ work).sum())
            with repro_obs.span("bench.step") as step_span:
                acc += float((work @ work).sum())
                acc += float((work @ work).sum())
            with repro_obs.span("bench.push") as push_span:
                acc += float((work @ work).sum())
        repro_obs.counter("bench.rounds").inc()
        repro_obs.counter("bench.env_steps").inc(2)
        repro_obs.histogram("bench.round_seconds").observe(round_span.seconds)
        repro_obs.histogram("bench.act_seconds").observe(act_span.seconds)
        repro_obs.histogram("bench.step_seconds").observe(step_span.seconds)
        repro_obs.histogram("bench.push_seconds").observe(push_span.seconds)
        return acc

    round_bare(), round_instrumented()  # warm caches off the clock
    best = {"bare": float("inf"), "instrumented": float("inf")}
    for _ in range(OBS_REPEATS):
        start = time.perf_counter()
        for _ in range(OBS_ROUNDS):
            round_bare()
        best["bare"] = min(best["bare"], time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(OBS_ROUNDS):
            round_instrumented()
        best["instrumented"] = min(
            best["instrumented"], time.perf_counter() - start
        )
    bare_us = best["bare"] / OBS_ROUNDS * 1e6
    instr_us = best["instrumented"] / OBS_ROUNDS * 1e6
    row = {
        "rounds": OBS_ROUNDS,
        "repeats": OBS_REPEATS,
        "bare_us_per_round": bare_us,
        "instrumented_us_per_round": instr_us,
        "overhead_us_per_round": max(0.0, instr_us - bare_us),
        "disabled_over_bare": bare_us / instr_us if instr_us > 0 else 1.0,
    }
    print(
        f"obs rounds={OBS_ROUNDS}: bare {bare_us:.2f} us/round, "
        f"instrumented {instr_us:.2f} us/round "
        f"-> {row['overhead_us_per_round']:.2f} us overhead "
        f"({row['disabled_over_bare']:.3f}x)"
    )
    return {str(OBS_ROUNDS): row}


def measure() -> dict:
    out = {
        "machine": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": len(os.sched_getaffinity(0)),
        },
        "workload": {
            "trainer_steps": TRAINER_STEPS,
            "trainer_config": TRAINER_CONFIG,
            "num_vector_envs": NUM_VECTOR_ENVS,
            "farm": {"width": FARM_WIDTH, "workers": FARM_WORKERS, "repeats": FARM_REPEATS},
        },
        "graph_features": bench_features(),
        "trainer": bench_trainer(),
        "synthesis": bench_synthesis(),
        "synthesis_farm": bench_farm(),
    }
    sta = bench_sta_backward()
    if sta is not None:
        out["sta_backward"] = sta
    analytical_rows = bench_analytical()
    if analytical_rows is not None:
        out["analytical"] = analytical_rows
    runtime = bench_runtime()
    if runtime is not None:
        out["runtime"] = runtime
    cluster = bench_cluster()
    if cluster is not None:
        out["cluster"] = cluster
    if BACKEND_AVAILABLE:
        out["backend"] = bench_backend()
    conv = bench_conv()
    if conv is not None:
        out["conv"] = conv
    inference = bench_inference()
    if inference is not None:
        out["inference"] = inference
    chaos = bench_chaos()
    if chaos is not None:
        out["chaos"] = chaos
    store = bench_store()
    if store is not None:
        out["store"] = store
    obs_section = bench_obs()
    if obs_section is not None:
        out["obs"] = obs_section
    return out


def _section_speedups(baseline: dict, current: dict) -> dict:
    """Per-section throughput ratios of ``current`` over ``baseline``."""
    speedups = {}
    for n, row in current["graph_features"].items():
        base = baseline.get("graph_features", {}).get(n)
        if base:
            speedups[f"graph_features_n{n}"] = row["graphs_per_sec"] / base["graphs_per_sec"]
            speedups[f"ripple_features_n{n}"] = (
                base["ripple_ms_per_graph"] / row["ripple_ms_per_graph"]
            )
    for n, row in current["trainer"].items():
        base = baseline.get("trainer", {}).get(n, {}).get("single_env_steps_per_sec")
        if not base:
            continue
        best = max(v for v in row.values())
        speedups[f"trainer_n{n}_single"] = row["single_env_steps_per_sec"] / base
        speedups[f"trainer_n{n}_best"] = best / base
    for n, row in current.get("synthesis", {}).items():
        base = baseline.get("synthesis", {}).get(n)
        if base:
            speedups[f"synthesize_curve_n{n}"] = (
                row["graphs_per_sec"] / base["graphs_per_sec"]
            )
    for n, row in current.get("sta_backward", {}).items():
        base = baseline.get("sta_backward", {}).get(n)
        if base:
            speedups[f"sta_recovery_n{n}"] = (
                row["graphs_per_sec"] / base["graphs_per_sec"]
            )
    for n, row in current.get("analytical", {}).items():
        base = baseline.get("analytical", {}).get(n)
        if base:
            speedups[f"analytical_n{n}"] = (
                row["graphs_per_sec"] / base["graphs_per_sec"]
            )
            speedups[f"analytical_ripple_n{n}"] = (
                base["ripple_ms_per_graph"] / row["ripple_ms_per_graph"]
            )
    return speedups


def merge(baseline: dict, current: dict, parent: "dict | None" = None) -> dict:
    """Combine recorded baselines with the current measurements.

    ``baseline`` is the seed-commit measurement (historical reference);
    ``parent`` optionally carries the previous release's numbers, so
    sections introduced after the seed (e.g. ``synthesis``) get a
    meaningful before/after ratio in ``speedups_vs_parent``.
    """
    speedups = _section_speedups(baseline, current)
    speedups["farm_pool_over_serial"] = current["synthesis_farm"]["pool_speedup"]
    for row in current.get("runtime", {}).values():
        # Within-run ratios (interleaved best-of), like the farm number.
        speedups[f"runtime_async{row['actors']}_over_serial"] = row["async_over_serial"]
        speedups[f"runtime_async{row['actors']}_synthesis_saved"] = (
            row["async_synthesis_work_saved"]
        )
    for row in current.get("cluster", {}).values():
        # Honest within-run ratios: on 1 CPU cluster_over_serial is a
        # *cost* record (spawn + wire overhead), not a speedup claim; the
        # work-saved fractions are the real wins at this core count.
        speedups[f"cluster_{row['actors']}proc_over_serial"] = row["cluster_over_serial"]
        speedups[f"cluster_{row['actors']}proc_synthesis_saved"] = (
            row["cluster_synthesis_work_saved"]
        )
        speedups["cluster_prepared_setup_saved"] = row["prepared"]["prepared_setup_saved"]
    for row in current.get("backend", {}).values():
        # Work-reduction fraction (not a wall-clock claim): the claim/lease
        # protocol vs the dedup-only shared cache under actor contention.
        speedups["backend_lease_synthesis_saved"] = row["lease_synthesis_saved"]
    for n, row in current.get("conv", {}).items():
        # Within-run interleaved ratios: fast tap-loop vs the im2col
        # oracle on the same arrays; fwd+bwd is the headline (the
        # backward's col2im scatter is the expensive part eliminated).
        speedups[f"conv_fast_train_n{n}"] = row["fast_train_speedup"]
        speedups[f"conv_fast_fwd_n{n}"] = row["fast_fwd_speedup"]
    for row in current.get("inference", {}).values():
        # Work-reduction records (not wall-clock claims on 1 CPU): how
        # many small forwards the shared server folded together.
        speedups["inference_coalescing"] = row["coalescing_ratio"]
        speedups["inference_forwards_saved"] = row["forwards_saved"]
    for row in current.get("chaos", {}).values():
        # A recovery-cost record, not a speedup: wall-clock of a run that
        # absorbed a severed actor link over an undisturbed run.
        speedups["chaos_severed_over_clean_wall"] = row["severed_over_clean_wall"]
    for row in current.get("store", {}).values():
        # Work-avoidance ratio: one warm disk hit vs the synthesize_curve
        # call it replaces after a restart.
        speedups["store_warm_read_over_synthesis"] = row["warm_read_over_synthesis"]
    for row in current.get("obs", {}).values():
        # A cost ceiling, not a speedup: bare-over-instrumented wall-clock
        # of a synthetic actor round with events off (1.0 = free).
        speedups["obs_disabled_over_bare"] = row["disabled_over_bare"]
    result = {"seed_baseline": baseline, "optimized": current, "speedups": speedups}
    if parent is not None:
        result["parent_baseline"] = parent
        result["speedups_vs_parent"] = _section_speedups(parent, current)
    return result


def apply_smoke_workload() -> None:
    """Shrink every section to a seconds-scale CI smoke workload."""
    global FEATURE_WIDTHS, TRAINER_WIDTHS, TRAINER_STEPS, NUM_VECTOR_ENVS
    global SYNTHESIS_WIDTHS, SYNTHESIS_REPEATS, FARM_WIDTH, FARM_WORKERS, FARM_REPEATS
    global STA_WIDTHS, STA_RECOVERY_PASSES, STA_REPEATS, STA_ROUNDS
    global ANALYTICAL_WIDTHS, ANALYTICAL_REPS, ANALYTICAL_RIPPLE_REPS
    global RUNTIME_WIDTH, RUNTIME_STEPS, RUNTIME_ROUNDS, RUNTIME_ENVS_PER_ACTOR
    global CLUSTER_WIDTH, CLUSTER_PROTOCOL_ITERS, CLUSTER_PREPARED_ROUNDS
    global BACKEND_WIDTH, BACKEND_ROUNDS
    global CONV_WIDTHS, CONV_BATCH, CONV_ROUNDS, CONV_REPS
    global INFERENCE_WIDTH, INFERENCE_CLIENTS, INFERENCE_REQUESTS
    global INFERENCE_ROWS, INFERENCE_ROUNDS
    global CHAOS_WIDTH, CHAOS_STEPS, CHAOS_ROUNDS
    global STORE_ENTRIES, STORE_ROUNDS, STORE_SYNTH_WIDTH, STORE_SYNTH_GRAPHS
    global OBS_ROUNDS, OBS_REPEATS
    FEATURE_WIDTHS = (8, 16)
    TRAINER_WIDTHS = (8,)
    TRAINER_STEPS = 24
    NUM_VECTOR_ENVS = 2
    SYNTHESIS_WIDTHS = (8,)
    SYNTHESIS_REPEATS = {8: 1}
    STA_WIDTHS = (8,)
    STA_RECOVERY_PASSES = 2
    STA_REPEATS = {8: 1}
    STA_ROUNDS = 1
    ANALYTICAL_WIDTHS = (8,)
    ANALYTICAL_REPS = 20
    ANALYTICAL_RIPPLE_REPS = 10
    FARM_WIDTH = 8
    FARM_WORKERS = 2
    FARM_REPEATS = 1
    RUNTIME_WIDTH = 8
    RUNTIME_STEPS = 16
    RUNTIME_ROUNDS = 1
    RUNTIME_ENVS_PER_ACTOR = 1
    CLUSTER_WIDTH = 8
    CLUSTER_PROTOCOL_ITERS = 20
    CLUSTER_PREPARED_ROUNDS = 1
    BACKEND_WIDTH = 8
    BACKEND_ROUNDS = 1
    CONV_WIDTHS = (8,)
    CONV_BATCH = 4
    CONV_ROUNDS = 1
    CONV_REPS = 2
    INFERENCE_WIDTH = 8
    INFERENCE_CLIENTS = 2
    INFERENCE_REQUESTS = 3
    INFERENCE_ROWS = 2
    INFERENCE_ROUNDS = 1
    CHAOS_WIDTH = 8
    CHAOS_STEPS = 16
    CHAOS_ROUNDS = 1
    STORE_ENTRIES = 64
    STORE_ROUNDS = 1
    STORE_SYNTH_WIDTH = 8
    STORE_SYNTH_GRAPHS = 2
    OBS_ROUNDS = 400
    OBS_REPEATS = 2


_HIGHER_IS_BETTER = ("graphs_per_sec", "steps_per_sec")
_LOWER_IS_BETTER = ("ms_per_graph",)


def check_against(recorded: dict, result: dict, tolerance: float) -> "list[str]":
    """Bench-regression gate: compare structure strictly, numbers loosely.

    ``recorded`` is the committed ``BENCH_hotpath.json``; ``result`` is the
    current (typically ``--smoke``) measurement. Strict: every recorded
    bench section and every recorded speedup-key *family* (width suffixes
    normalized, ``_n16`` -> ``_n*``) must still materialize — a key that
    silently disappears means a bench or API regressed. Loose: where the
    recorded and current runs share a width, throughput must not fall
    below ``tolerance`` times the recorded value (and ms-per-item must not
    exceed it by the inverse) — CI hosts differ from the recording host,
    so the tolerance is generous noise-awareness, catching only
    order-of-magnitude regressions.
    """
    problems = []
    rec_opt = recorded.get("optimized", {})
    cur_opt = result.get("optimized", {})
    skip = ("machine", "workload")
    for section in rec_opt:
        if section not in skip and section not in cur_opt:
            problems.append(f"bench section {section!r} disappeared")

    def family(key: str) -> str:
        return re.sub(r"_n\d+", "_n*", key)

    rec_keys = {family(k) for k in recorded.get("speedups", {})}
    cur_keys = {family(k) for k in result.get("speedups", {})}
    for key in sorted(rec_keys - cur_keys):
        problems.append(f"speedup key family {key!r} disappeared")

    for section, rows in rec_opt.items():
        if section in skip or not isinstance(rows, dict):
            continue
        cur_rows = cur_opt.get(section)
        if not isinstance(cur_rows, dict):
            continue
        for width, row in rows.items():
            cur_row = cur_rows.get(width)
            if not isinstance(row, dict) or not isinstance(cur_row, dict):
                continue
            for metric, value in row.items():
                cur_value = cur_row.get(metric)
                if not isinstance(value, (int, float)) or not isinstance(
                    cur_value, (int, float)
                ):
                    continue
                if metric.endswith(_HIGHER_IS_BETTER) and cur_value < value * tolerance:
                    problems.append(
                        f"{section}[{width}].{metric} regressed: "
                        f"{cur_value:.3f} < {tolerance} * recorded {value:.3f}"
                    )
                elif metric.endswith(_LOWER_IS_BETTER) and cur_value > value / tolerance:
                    problems.append(
                        f"{section}[{width}].{metric} regressed: "
                        f"{cur_value:.3f} > recorded {value:.3f} / {tolerance}"
                    )
    return problems


def run_smoke(output: "str | None") -> dict:
    """CI gate: every section runs and every speedup key materializes.

    Merges the measurement against itself (all ratios 1.0) purely to
    exercise the key-generation path — the numbers are not publishable.
    """
    apply_smoke_workload()
    current = measure()
    result = merge(current, current, parent=current)
    for section in ("graph_features", "trainer", "synthesis", "synthesis_farm"):
        assert section in current, f"missing bench section {section!r}"
    speedups = result["speedups"]
    expected = [
        "graph_features_n8",
        "ripple_features_n8",
        "trainer_n8_single",
        "synthesize_curve_n8",
        "farm_pool_over_serial",
    ]
    if Synthesizer is not None:
        assert "sta_backward" in current, "missing bench section 'sta_backward'"
        expected.append(f"sta_recovery_n{STA_WIDTHS[0]}")
    if analytical_delay is not None:
        assert "analytical" in current, "missing bench section 'analytical'"
        expected.append(f"analytical_n{ANALYTICAL_WIDTHS[0]}")
        expected.append(f"analytical_ripple_n{ANALYTICAL_WIDTHS[0]}")
    if TrainingRuntime is not None:
        assert "runtime" in current, "missing bench section 'runtime'"
        expected.append(f"runtime_async{RUNTIME_ACTORS}_over_serial")
        expected.append(f"runtime_async{RUNTIME_ACTORS}_synthesis_saved")
    if repro_net is not None and TrainingRuntime is not None:
        assert "cluster" in current, "missing bench section 'cluster'"
        expected.append(f"cluster_{RUNTIME_ACTORS}proc_over_serial")
        expected.append(f"cluster_{RUNTIME_ACTORS}proc_synthesis_saved")
        expected.append("cluster_prepared_setup_saved")
    if BACKEND_AVAILABLE:
        assert "backend" in current, "missing bench section 'backend'"
        expected.append("backend_lease_synthesis_saved")
    if CONV_FAST_AVAILABLE:
        assert "conv" in current, "missing bench section 'conv'"
        expected.append(f"conv_fast_train_n{CONV_WIDTHS[0]}")
        expected.append(f"conv_fast_fwd_n{CONV_WIDTHS[0]}")
    if INFERENCE_AVAILABLE:
        assert "inference" in current, "missing bench section 'inference'"
        expected.append("inference_coalescing")
        expected.append("inference_forwards_saved")
    if CHAOS_AVAILABLE:
        assert "chaos" in current, "missing bench section 'chaos'"
        expected.append("chaos_severed_over_clean_wall")
    if STORE_AVAILABLE:
        assert "store" in current, "missing bench section 'store'"
        expected.append("store_warm_read_over_synthesis")
    if OBS_AVAILABLE:
        assert "obs" in current, "missing bench section 'obs'"
        expected.append("obs_disabled_over_bare")
    missing = [k for k in expected if k not in speedups]
    assert not missing, f"missing speedup keys: {missing}"
    assert "synthesize_curve_n8" in result["speedups_vs_parent"]
    print("smoke OK: sections", sorted(current), "keys", sorted(speedups))
    if output:
        with open(output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {output}")
    return result


def profile_sections() -> dict:
    """Name -> section callable, for ``--profile``."""
    return {
        "graph_features": bench_features,
        "trainer": bench_trainer,
        "synthesis": bench_synthesis,
        "sta_backward": bench_sta_backward,
        "analytical": bench_analytical,
        "synthesis_farm": bench_farm,
        "runtime": bench_runtime,
        "cluster": bench_cluster,
        "backend": (lambda: bench_backend() if BACKEND_AVAILABLE else None),
        "conv": bench_conv,
        "inference": bench_inference,
        "chaos": bench_chaos,
        "store": bench_store,
        "obs": bench_obs,
    }


def run_profile(section: str, top: int) -> None:
    """Run one bench section under cProfile and print a top-N breakdown."""
    import cProfile
    import pstats

    sections = profile_sections()
    fn = sections.get(section)
    if fn is None:
        raise SystemExit(
            f"unknown --profile section {section!r}; choose from: "
            + ", ".join(sorted(sections))
        )
    prof = cProfile.Profile()
    prof.enable()
    result = fn()
    prof.disable()
    if result is None:
        print(f"section {section!r} is unavailable in this tree; nothing profiled")
        return
    print(f"\n--- cProfile {section}: top {top} by cumulative time ---")
    stats = pstats.Stats(prof)
    stats.sort_stats("cumulative")
    stats.print_stats(top)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None, help="write JSON here")
    parser.add_argument(
        "--baseline", default=None,
        help="seed-measurement JSON to merge against (adds a speedups section)",
    )
    parser.add_argument(
        "--parent-baseline", default=None,
        help="previous-release JSON (adds a speedups_vs_parent section)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny CI workload; asserts sections and speedup keys exist",
    )
    parser.add_argument(
        "--check-against", default=None, metavar="BENCH_JSON",
        help="regression gate: fail if a section/speedup key recorded in this "
             "JSON is missing, or a shared-width metric regresses beyond "
             "--tolerance (requires --smoke or --baseline)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="loose numeric gate for --check-against: current throughput must "
             "stay above tolerance * recorded (default 0.2, i.e. within 5x — "
             "CI hosts differ from the recording host)",
    )
    parser.add_argument(
        "--profile", default=None, metavar="SECTION",
        help="run one bench section under cProfile and print the hottest "
             "functions instead of measuring; combine with --smoke for a "
             "fast workload (sections: "
             "graph_features, trainer, synthesis, sta_backward, analytical, "
             "synthesis_farm, runtime, cluster, backend, conv, inference, "
             "chaos, store, obs)",
    )
    parser.add_argument(
        "--profile-top", type=int, default=30,
        help="rows of pstats output for --profile (default 30)",
    )
    args = parser.parse_args()

    if args.profile:
        if args.smoke:
            apply_smoke_workload()
        run_profile(args.profile, args.profile_top)
        return

    if args.check_against:
        if not args.smoke and not args.baseline:
            parser.error("--check-against requires --smoke or --baseline")
        if not os.path.exists(args.check_against):
            parser.error(f"check-against file not found: {args.check_against}")

    def run_gate(result: dict) -> None:
        if not args.check_against:
            return
        with open(args.check_against) as fh:
            recorded = json.load(fh)
        problems = check_against(recorded, result, args.tolerance)
        for problem in problems:
            print(f"REGRESSION: {problem}")
        if problems:
            raise SystemExit(1)
        print(f"regression gate OK vs {args.check_against} "
              f"(tolerance {args.tolerance})")

    if args.smoke:
        run_gate(run_smoke(args.output))
        return

    if args.baseline and not os.path.exists(args.baseline):
        parser.error(f"baseline file not found: {args.baseline}")
    if args.parent_baseline and not os.path.exists(args.parent_baseline):
        parser.error(f"parent baseline file not found: {args.parent_baseline}")

    current = measure()
    if args.baseline:
        parent = None
        if args.parent_baseline:
            with open(args.parent_baseline) as fh:
                parent = json.load(fh)
        with open(args.baseline) as fh:
            result = merge(json.load(fh), current, parent=parent)
        for key, value in sorted(result["speedups"].items()):
            print(f"speedup {key}: {value:.2f}x")
        for key, value in sorted(result.get("speedups_vs_parent", {}).items()):
            print(f"vs-parent {key}: {value:.2f}x")
    else:
        result = current

    if args.output:
        with open(args.output, "w") as fh:
            json.dump(result, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    run_gate(result)


if __name__ == "__main__":
    main()
