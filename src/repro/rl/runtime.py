"""The asynchronous actor-learner training runtime (Section IV-D).

The paper's headline scale comes from decoupling experience generation
from learning: hundreds of actors step synthesis-evaluated environments
against delayed policy snapshots while one learner consumes a shared
replay buffer. :class:`TrainingRuntime` reproduces that architecture at
library scale, in two modes:

- ``mode="async"`` — ``num_actors`` worker threads
  (:class:`repro.distributed.ActorWorker`), each stepping its own
  (vector) environment against a private policy snapshot and pushing
  into its own shard of a :class:`repro.rl.replay.ShardedReplayBuffer`;
  the learner thread runs gradient steps at the synchronous cadence
  (one per ``learn_every`` collected env steps) and publishes weights
  every ``publish_every`` gradient steps through a
  :class:`repro.distributed.PolicyHub`. On a single CPU the win is
  batching and cross-actor cache sharing, not parallel compute — see
  ``benchmarks/bench_hotpath.py``'s ``runtime`` section.
- ``mode="sync"`` — the deterministic fallback: the exact
  :class:`repro.rl.trainer.Trainer` collection loop (same stepper
  classes, same RNG consumption, bit-identical
  :class:`~repro.rl.trainer.TrainingHistory`), with checkpoint hooks
  between ticks. This is the mode CI differential-checks.
- ``mode="cluster"`` — the multi-process / multi-host shape: the runtime
  owns only the learner half (agent, sharded buffer, history, the shared
  synthesis cache) and serves it over a
  :class:`repro.net.learner.LearnerServer`; experience arrives from
  :class:`repro.net.actor.RemoteActorWorker` *processes* (``repro actor
  --connect``), which is where the actor/learner split escapes the GIL.
  Checkpoints capture the learner-owned state (round-boundary quiesce via
  the ingest lock); remote environments are rebuilt fresh by actors on
  reconnect, so a resume continues the learning trajectory without
  replaying actor-side episode tails.

Both modes support full checkpoint/resume through
:class:`repro.rl.checkpoint.CheckpointManager`: Q-net weights, optimizer
moments, replay shards, every RNG stream, schedule position, environment
and archive state, synthesis-cache contents and the accumulated
:class:`~repro.rl.trainer.TrainingHistory`. In sync mode,
save -> resume -> continue is bit-identical to an uninterrupted run; in
async mode a resume restores exact component state but thread
interleaving is, by nature, not replayed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass

from repro import obs
from repro.env.environment import PrefixEnv
from repro.env.vector import VectorPrefixEnv
from repro.rl.agent import ScalarizedDoubleDQN
from repro.rl.checkpoint import CheckpointError, CheckpointManager
from repro.rl.replay import ReplayBuffer, ShardedReplayBuffer
from repro.rl.trainer import (
    TrainerConfig,
    TrainingHistory,
    make_loop,
    synthesis_stats,
)
from repro.store.api import make_store
from repro.synth.backend import encode_cache_state, restore_cache_state
from repro.utils.rng import ensure_rng, rng_state, set_rng_state, spawn_rngs


@dataclass
class RuntimeConfig:
    """Knobs of the runtime that are not :class:`TrainerConfig` knobs."""

    mode: str = "sync"             # "sync" (deterministic), "async" or "cluster"
    num_actors: int = 2            # async/cluster: actor (thread/process) count
    publish_every: int = 1         # async/cluster: gradient steps between weight publications
    checkpoint_every: int = 0      # env steps between checkpoints (0: only stop/final)
    keep_checkpoints: int = 3      # snapshots retained on disk
    stop_after: "int | None" = None  # checkpoint and halt at this env step (preemption)
    listen: str = "127.0.0.1:0"    # cluster only: learner bind address
    heartbeat_timeout: float = 60.0  # cluster only: dead-peer cutoff (seconds);
    #   must exceed an actor's worst acting round (synthesis included) —
    #   the actor is wire-silent while it steps its environments
    cluster_wait: float = 60.0     # cluster only: max seconds with zero actors
    serve_inference: bool = False  # cluster only: host a shared batched
    #   inference server next to the learner (actors opt in per process)
    inference_listen: str = "127.0.0.1:0"  # cluster only: inference bind address
    inference_max_batch: int = 256   # rows coalesced into one forward, at most
    inference_max_wait: float = 0.005  # seconds to hold a batch for stragglers
    backpressure_lag: int = 64     # cluster only: gradient-cadence deficit
    #   beyond which push_batch replies carry a throttle hint (0 disables)
    throttle_seconds: float = 0.05  # cluster only: the hint's pause length
    store_dir: "str | None" = None  # cluster only: persistent curve store
    #   directory behind the shared cache (None: in-memory only)

    def __post_init__(self):
        if self.mode not in ("sync", "async", "cluster"):
            raise ValueError(
                f"mode must be 'sync', 'async' or 'cluster', got {self.mode!r}"
            )
        if self.num_actors < 1:
            raise ValueError("num_actors must be positive")
        if self.publish_every < 1:
            raise ValueError("publish_every must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be nonnegative")
        if self.inference_max_batch < 1:
            raise ValueError("inference_max_batch must be positive")
        if self.inference_max_wait < 0:
            raise ValueError("inference_max_wait must be nonnegative")
        if self.backpressure_lag < 0:
            raise ValueError("backpressure_lag must be nonnegative")
        if self.throttle_seconds < 0:
            raise ValueError("throttle_seconds must be nonnegative")


def grads_allowed(env_steps: int, total: int, cfg: TrainerConfig) -> int:
    """Gradient steps the synchronous cadence permits after ``env_steps``.

    The single-env loop fires at (0-indexed) step ``s`` when
    ``s % learn_every == 0`` and the buffer already holds
    ``warmup_steps``, i.e. ``s >= warmup - 1``; the async and cluster
    learners reproduce that budget so all modes train at one cadence.
    """
    done_steps = min(env_steps, total)
    le = max(cfg.learn_every, 1)
    first = -(-(cfg.warmup_steps - 1) // le) * le
    return (done_steps - 1 - first) // le + 1 if done_steps > first else 0


class _Coordinator:
    """Shared state between the learner thread and the actor threads."""

    def __init__(self, total: int, history: TrainingHistory):
        self.total = total
        self.history = history
        self.lock = threading.Lock()
        self._stop = threading.Event()
        self._cond = threading.Condition()
        self._alive = 0
        self._paused = 0
        self._pausing = False

    # -- lifecycle -------------------------------------------------------

    def register(self) -> None:
        with self._cond:
            self._alive += 1

    def deregister(self) -> None:
        with self._cond:
            self._alive -= 1
            self._cond.notify_all()

    def stopping(self) -> bool:
        return self._stop.is_set()

    def abort(self) -> None:
        self._stop.set()
        with self._cond:
            self._cond.notify_all()

    # -- progress accounting ---------------------------------------------

    def env_steps(self) -> int:
        with self.lock:
            return self.history.env_steps

    def gradient_steps(self) -> int:
        with self.lock:
            return self.history.gradient_steps

    def record_round(self, actor, results, epsilon: float) -> int:
        """Fold one actor round into the history; returns transitions kept."""
        history = self.history
        kept = 0
        with self.lock:
            for i, result in enumerate(results):
                if history.env_steps >= self.total:
                    break
                actor.episode_returns[i] += float(
                    actor.policy._hub.w @ result.reward
                )
                history.areas.append(result.info["area"])
                history.delays.append(result.info["delay"])
                history.epsilon_trace.append(epsilon)
                history.env_steps += 1
                kept += 1
                if result.done:
                    history.episode_returns.append(actor.episode_returns[i])
                    actor.episode_returns[i] = 0.0
        return kept

    def record_loss(self, loss: float) -> None:
        with self.lock:
            self.history.losses.append(loss)
            self.history.gradient_steps += 1

    # -- checkpoint barrier ----------------------------------------------

    def checkpoint_point(self) -> None:
        """Actors park here (round boundary) while a checkpoint is taken."""
        with self._cond:
            while self._pausing and not self._stop.is_set():
                self._paused += 1
                self._cond.notify_all()
                self._cond.wait()
                self._paused -= 1
                self._cond.notify_all()

    def pause_actors(self) -> None:
        """Block until every live actor is parked at the barrier."""
        with self._cond:
            self._pausing = True
            self._cond.notify_all()
            while self._paused < self._alive and not self._stop.is_set():
                self._cond.wait(timeout=0.1)

    def resume_actors(self) -> None:
        with self._cond:
            self._pausing = False
            self._cond.notify_all()


class TrainingRuntime:
    """Actor-learner training with checkpoint/resume.

    Args:
        env: the collection environment(s). Sync mode takes one
            :class:`PrefixEnv` or :class:`VectorPrefixEnv` (exactly like
            :class:`~repro.rl.trainer.Trainer`). Async mode takes a list
            with one entry per actor (single envs are wrapped into
            one-replica vector envs).
        agent: the learner's agent.
        config: :class:`TrainerConfig` (steps, batch size, cadences).
        runtime: :class:`RuntimeConfig` (mode, actors, checkpoint cadence).
        checkpoint_dir: root directory for snapshots (required for
            checkpointing/resume; optional otherwise).
        rng: seed or generator. Sync mode consumes it exactly as
            ``Trainer(..., rng=rng)`` does (replay sampling), keeping the
            two paths bit-identical; async mode additionally derives
            per-actor exploration streams from it.
        cluster: cluster mode only — the :class:`repro.net.ClusterSpec`
            actors receive on join (env shape, library, scalarization,
            network architecture). ``env`` must be None: environments
            live in the actor processes.
    """

    def __init__(
        self,
        env,
        agent: ScalarizedDoubleDQN,
        config: "TrainerConfig | None" = None,
        runtime: "RuntimeConfig | None" = None,
        checkpoint_dir=None,
        rng=None,
        cluster=None,
    ):
        self.agent = agent
        self.config = config if config is not None else TrainerConfig()
        self.runtime = runtime if runtime is not None else RuntimeConfig()
        self.manager = (
            CheckpointManager(checkpoint_dir, keep_last=self.runtime.keep_checkpoints)
            if checkpoint_dir is not None
            else None
        )
        if cluster is not None and self.runtime.mode != "cluster":
            raise ValueError("a ClusterSpec only makes sense with mode='cluster'")
        if self.runtime.mode == "cluster":
            if env is not None:
                raise ValueError(
                    "cluster mode takes env=None: environments live in the "
                    "remote actor processes"
                )
            if cluster is None:
                raise ValueError("cluster mode needs a ClusterSpec (cluster=...)")
            if cluster.width != agent.n:
                raise ValueError(
                    f"ClusterSpec width {cluster.width} != agent width {agent.n}"
                )
            self.env = None
            self.actor_envs = None
            self.cluster = cluster
            self.buffer = ShardedReplayBuffer(
                self.config.buffer_capacity,
                num_shards=self.runtime.num_actors,
                rng=ensure_rng(rng),
            )
            self._actor_rngs = None
            self._server = None
            self._state = None
            # In-memory by default; with store_dir, a memory front over a
            # durable DiskStore — a restarted cluster starts warm.
            self._cluster_cache = make_store(self.runtime.store_dir)
            self._inference_server = None
        elif self.runtime.mode == "sync":
            if isinstance(env, (list, tuple)):
                raise ValueError("sync mode takes a single environment, not a list")
            self.env = env
            self.actor_envs = None
            self.buffer = ReplayBuffer(self.config.buffer_capacity, rng=rng)
            self._actor_rngs = None
        else:
            if isinstance(env, (list, tuple)):
                envs = list(env)
            else:
                envs = [env]
            if len(envs) != self.runtime.num_actors:
                raise ValueError(
                    f"async mode with num_actors={self.runtime.num_actors} needs "
                    f"{self.runtime.num_actors} environments, got {len(envs)}"
                )
            self.actor_envs = [
                e if isinstance(e, VectorPrefixEnv) else VectorPrefixEnv([e])
                for e in envs
            ]
            self.env = None
            base = ensure_rng(rng)
            self.buffer = ShardedReplayBuffer(
                self.config.buffer_capacity,
                num_shards=self.runtime.num_actors,
                rng=base,
            )
            self._actor_rngs = spawn_rngs(base, self.runtime.num_actors)
        if self.runtime.mode != "cluster":
            self.cluster = None
            self._server = None
            self._state = None
            self._inference_server = None
        self.preempted = False
        self.inference_stats: "dict | None" = None
        self.membership_stats: "dict | None" = None
        # Fleet-obs totals restored from a checkpoint, applied to the
        # LearnerState once cluster mode creates it.
        self._restored_fleet_obs: "dict | None" = None

    # ------------------------------------------------------------------
    # Checkpoint assembly
    # ------------------------------------------------------------------

    def _all_envs(self) -> "list[PrefixEnv]":
        if self.runtime.mode == "cluster":
            return []  # environments live in the actor processes
        if self.runtime.mode == "sync":
            return self.env.envs if isinstance(self.env, VectorPrefixEnv) else [self.env]
        return [e for venv in self.actor_envs for e in venv.envs]

    def _collect_backend_groups(self) -> "list[list]":
        """Distinct evaluation backends, grouped by shared state token.

        Each group shares one ``share_token()`` (typically one
        :class:`SynthesisCache`): its state is checkpointed once, with one
        counter record per member backend (deterministic env order), so a
        resumed run's telemetry continues bit-for-bit.
        """
        groups: "list[list]" = []
        tokens: "list" = []
        for env in self._all_envs():
            backend = getattr(env.evaluator, "backend", None)
            if backend is None:
                continue
            token = backend.share_token()
            for i, seen in enumerate(tokens):
                if seen is token:
                    if all(backend is not b for b in groups[i]):
                        groups[i].append(backend)
                    break
            else:
                tokens.append(token)
                groups.append([backend])
        return groups

    def _cache_states(self) -> "list[dict]":
        if self.runtime.mode == "cluster":
            # The learner-owned shared cache service is the only evaluation
            # state a cluster checkpoint can (and needs to) capture; lease
            # bookkeeping is transient — actors reconnect and re-claim.
            return [{"cache": encode_cache_state(self._cluster_cache), "counters": []}]
        states = []
        for group in self._collect_backend_groups():
            state = group[0].state_dict()
            state["counters"] = [backend.counters_dict() for backend in group]
            states.append(state)
        return states

    def _restore_caches(self, states: "list[dict]") -> None:
        if self.runtime.mode == "cluster":
            if len(states) != 1:
                raise CheckpointError(
                    f"cluster checkpoint has {len(states)} synthesis caches, expected 1"
                )
            restore_cache_state(self._cluster_cache, states[0]["cache"])
            return
        groups = self._collect_backend_groups()
        if len(states) != len(groups):
            raise CheckpointError(
                f"checkpoint has {len(states)} evaluation-backend groups, "
                f"live evaluators expose {len(groups)}"
            )
        for group, state in zip(groups, states):
            if state.get("cache") is not None:
                cache = getattr(group[0], "cache", None)
                if cache is None:
                    raise CheckpointError(
                        "checkpoint carries cache contents for a backend "
                        f"({group[0].name}) that has no local cache"
                    )
                restore_cache_state(cache, state["cache"])
            counters = state.get("counters") or []
            if len(counters) != len(group):
                raise CheckpointError(
                    f"checkpoint has {len(counters)} backend counter records "
                    f"for a group of {len(group)} backends"
                )
            for backend, record in zip(group, counters):
                backend.load_counters(record)

    def _farm(self):
        for env in self._all_envs():
            farm = getattr(env.evaluator, "farm", None)
            if farm is not None:
                return farm
        return None

    def _history_state(self, history: TrainingHistory) -> dict:
        return {
            "losses": list(history.losses),
            "episode_returns": list(history.episode_returns),
            "areas": list(history.areas),
            "delays": list(history.delays),
            "epsilon_trace": list(history.epsilon_trace),
            "env_steps": history.env_steps,
            "gradient_steps": history.gradient_steps,
        }

    @staticmethod
    def _history_from_state(state: dict) -> TrainingHistory:
        return TrainingHistory(
            losses=[float(x) for x in state["losses"]],
            episode_returns=[float(x) for x in state["episode_returns"]],
            areas=[float(x) for x in state["areas"]],
            delays=[float(x) for x in state["delays"]],
            epsilon_trace=[float(x) for x in state["epsilon_trace"]],
            env_steps=int(state["env_steps"]),
            gradient_steps=int(state["gradient_steps"]),
        )

    def _snapshot(self, total: int, history: TrainingHistory, loop_state: dict) -> dict:
        state = {
            "mode": self.runtime.mode,
            "total": total,
            "trainer_config": asdict(self.config),
            "loop": loop_state,
            "history": self._history_state(history),
            "agent": self.agent.state_dict(),
            "buffer": self.buffer.state_dict(),
            "caches": self._cache_states(),
        }
        if self.runtime.mode == "cluster":
            # Remote env state lives in (and is rebuilt by) the actor
            # processes; the snapshot carries only what the learner owns.
            state["env_kind"] = "cluster"
            state["env"] = {"num_actors": self.runtime.num_actors}
        elif self.runtime.mode == "sync":
            state["env_kind"] = (
                "vector" if isinstance(self.env, VectorPrefixEnv) else "single"
            )
            state["env"] = self.env.state_dict()
        else:
            state["env_kind"] = "actors"
            state["env"] = {"actors": [v.state_dict() for v in self.actor_envs]}
            state["actor_rngs"] = [rng_state(r) for r in self._actor_rngs]
        farm = self._farm()
        if farm is not None:
            state["farm"] = {
                "total_batches": farm.total_batches,
                "total_graphs": farm.total_graphs,
                "total_unique": farm.total_unique,
                "total_cache_hits": farm.total_cache_hits,
                "total_dispatched": farm.total_dispatched,
            }
        # Metrics survive checkpoint/resume: the learner's own registry
        # plus (cluster mode) the merged fleet totals pushed by workers.
        obs_state = {"metrics": obs.REGISTRY.state_dict()}
        if self._state is not None:
            obs_state["fleet"] = self._state.fleet_obs.state_dict()
        state["obs"] = obs_state
        return state

    def _save(self, total: int, history: TrainingHistory, loop_state: dict) -> None:
        if self.manager is None:
            raise CheckpointError(
                "cannot checkpoint: TrainingRuntime was built without a checkpoint_dir"
            )
        self.manager.save(
            self._snapshot(total, history, loop_state),
            step=history.env_steps,
            meta={
                "mode": self.runtime.mode,
                "env_steps": history.env_steps,
                "gradient_steps": history.gradient_steps,
                "total": total,
            },
        )

    def _load(self, steps: "int | None"):
        if self.manager is None:
            raise CheckpointError(
                "cannot resume: TrainingRuntime was built without a checkpoint_dir"
            )
        state, _manifest = self.manager.load()
        if state["mode"] != self.runtime.mode:
            raise CheckpointError(
                f"checkpoint was taken in {state['mode']!r} mode, "
                f"runtime is configured for {self.runtime.mode!r}"
            )
        saved_cfg = state["trainer_config"]
        live_cfg = asdict(self.config)
        drift = {
            k: (saved_cfg.get(k), live_cfg[k])
            for k in live_cfg
            if k != "steps" and saved_cfg.get(k) != live_cfg[k]
        }
        if drift:
            raise CheckpointError(
                "trainer config drifted since the checkpoint (resuming would "
                f"silently change the trajectory): {drift}"
            )
        total = int(state["total"])
        if steps is not None and steps != total:
            raise CheckpointError(
                f"checkpoint targets {total} total steps; pass steps={total} "
                f"(or None) to resume, got {steps}"
            )
        self.agent.load_state_dict(state["agent"])
        self.buffer.load_state_dict(state["buffer"])
        self._restore_caches(state["caches"])
        if self.runtime.mode == "cluster":
            pass  # no env state: actors rebuild environments on reconnect
        elif self.runtime.mode == "sync":
            self.env.load_state_dict(state["env"])
        else:
            actors = state["env"]["actors"]
            if len(actors) != len(self.actor_envs):
                raise CheckpointError(
                    f"checkpoint has {len(actors)} actors, runtime has "
                    f"{len(self.actor_envs)}"
                )
            for venv, snap in zip(self.actor_envs, actors):
                venv.load_state_dict(snap)
            for rng, snap in zip(self._actor_rngs, state["actor_rngs"]):
                set_rng_state(rng, snap)
        farm = self._farm()
        if farm is not None and "farm" in state:
            for key, value in state["farm"].items():
                setattr(farm, key, int(value))
        obs_state = state.get("obs")  # absent in pre-obs checkpoints
        if isinstance(obs_state, dict):
            if isinstance(obs_state.get("metrics"), dict):
                obs.REGISTRY.load_state_dict(obs_state["metrics"])
            self._restored_fleet_obs = obs_state.get("fleet")
        history = self._history_from_state(state["history"])
        return total, history, state["loop"]

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self, steps: "int | None" = None, resume: bool = False) -> TrainingHistory:
        """Train to the step budget (or ``stop_after``); returns the history.

        ``resume=True`` restores the latest checkpoint and continues to
        its recorded total. A run halted by ``stop_after`` checkpoints
        itself and leaves :attr:`preempted` True, so the caller can tell
        completion from preemption.
        """
        self.preempted = False
        if self.runtime.mode == "sync":
            return self._run_sync(steps, resume)
        if self.runtime.mode == "cluster":
            return self._run_cluster(steps, resume)
        return self._run_async(steps, resume)

    # ------------------------------------------------------------------
    # Cluster mode (repro.net)
    # ------------------------------------------------------------------

    def bind(self) -> "tuple[str, int]":
        """Bind the cluster learner server; returns its (host, port).

        Binding is separate from :meth:`run` so launchers can hand the
        address to actor subprocesses first — connections made before the
        training state exists wait on the server's ready gate.
        """
        if self.runtime.mode != "cluster":
            raise RuntimeError("bind() is only meaningful in cluster mode")
        if self._server is None:
            from repro.net.learner import LearnerServer
            from repro.net.protocol import parse_address

            self._server = LearnerServer(
                parse_address(self.runtime.listen),
                heartbeat_timeout=self.runtime.heartbeat_timeout,
                state_wait=self.runtime.cluster_wait,
            )
            self._server.start()
        return self._server.address

    def bind_inference(self) -> "tuple[str, int]":
        """Bind the shared batched-inference server; returns its address.

        Like :meth:`bind`, binding is separate from :meth:`run` so the
        launcher can pass ``--inference host:port`` to actor subprocesses
        before training state exists — requests made early wait on the
        server's ready gate (and the client falls back to local inference
        if the gate times out).
        """
        if self.runtime.mode != "cluster":
            raise RuntimeError("bind_inference() is only meaningful in cluster mode")
        if not self.runtime.serve_inference:
            raise RuntimeError("runtime config does not set serve_inference")
        if self._inference_server is None:
            from repro.net.inference import InferenceServer
            from repro.net.protocol import parse_address

            self._inference_server = InferenceServer(
                parse_address(self.runtime.inference_listen),
                max_batch=self.runtime.inference_max_batch,
                max_wait=self.runtime.inference_max_wait,
                heartbeat_timeout=self.runtime.heartbeat_timeout,
                state_wait=self.runtime.cluster_wait,
            )
            self._inference_server.start()
        return self._inference_server.address

    def _run_cluster(self, steps: "int | None", resume: bool) -> TrainingHistory:
        from repro.distributed.pipeline import PolicyHub
        from repro.net.learner import LearnerState

        self.bind()
        server = self._server
        try:
            if resume:
                total, history, _loop_state = self._load(steps)
            else:
                total = steps if steps is not None else self.config.steps
                history = TrainingHistory()

            cfg = self.config
            hub = PolicyHub(self.agent)
            state = LearnerState(
                agent=self.agent,
                hub=hub,
                buffer=self.buffer,
                history=history,
                schedule=cfg.schedule(total),
                total=total,
                spec=self.cluster,
                cache=self._cluster_cache,
                halt_at=self.runtime.stop_after,
                # Lease reclamation rides the same dead-peer budget as the
                # connection teardown: a wedged holder is reclaimable the
                # moment the heartbeat would have declared it dead.
                lease_timeout=self.runtime.heartbeat_timeout,
                # Backpressure: when ingest outruns the synchronous gradient
                # cadence by more than this lag, push replies carry a
                # throttle hint so actors yield instead of ballooning the
                # buffer on a slow learner.
                grads_allowed_fn=lambda env_steps: grads_allowed(
                    env_steps, total, cfg
                ),
                backpressure_lag=self.runtime.backpressure_lag,
                throttle_seconds=self.runtime.throttle_seconds,
            )
            if self._restored_fleet_obs is not None:
                # Rejoin fleet totals from the checkpoint: counters pushed
                # by pre-restart workers stay in the merged view.
                state.fleet_obs.load_state_dict(self._restored_fleet_obs)
                self._restored_fleet_obs = None
            self._state = state
            server.attach(state)
            if self.runtime.serve_inference:
                self.bind_inference()
                # The inference server tracks the same hub the actors'
                # pull_weights reads — one publication feeds both paths.
                self._inference_server.attach(
                    hub, self.agent.snapshot_network(), self.agent.actions
                )

            last_saved = history.env_steps
            stopped_early = False
            idle_since = time.monotonic()
            while True:
                env_steps = state.env_steps()
                if self._stop_requested(history):
                    stopped_early = True
                    break
                if (
                    len(self.buffer) >= cfg.warmup_steps
                    and state.gradient_steps() < grads_allowed(env_steps, total, cfg)
                ):
                    loss = self.agent.train_step(self.buffer.sample(cfg.batch_size))
                    state.record_loss(loss)
                    if history.gradient_steps % self.runtime.publish_every == 0:
                        hub.publish()
                    idle_since = time.monotonic()
                elif env_steps >= total:
                    break
                else:
                    if state.ever_joined and state.connected_actors():
                        idle_since = time.monotonic()
                    elif time.monotonic() - idle_since > self.runtime.cluster_wait:
                        raise RuntimeError(
                            f"no actors connected for {self.runtime.cluster_wait:.0f}s "
                            f"at env step {env_steps}/{total}; is anything dialing "
                            f"{server.address[0]}:{server.address[1]}?"
                        )
                    time.sleep(0.002)
                if self._checkpoint_due(history, last_saved):
                    # Holding the ingest lock parks every actor at its next
                    # round boundary (push_batch blocks), the cluster's
                    # equivalent of the async pause barrier.
                    with state.ingest_lock:
                        self._save(total, history, {"kind": "cluster"})
                        last_saved = history.env_steps

            state.stop = True
            # Drain: let connected actors see the stop reply and leave.
            # Rounds in flight once stop is set are discarded (kept=0) —
            # the final snapshot is exactly the state at the halt step.
            deadline = time.monotonic() + self.runtime.heartbeat_timeout
            while state.connected_actors() and time.monotonic() < deadline:
                time.sleep(0.01)

            if self.manager is not None:
                with state.ingest_lock:
                    self._save(total, history, {"kind": "cluster"})
            self.preempted = stopped_early and history.env_steps < total
            history.synthesis_stats = self._cluster_synthesis_stats(state)
            self.membership_stats = state.membership_dict()
            return history
        finally:
            self._state = None
            if self._inference_server is not None:
                self.inference_stats = self._inference_server.stats_dict()
                self._inference_server.stop()
                self._inference_server = None
            server.stop()
            self._server = None
            # Release the store (and its single-writer lock) so a rerun
            # against the same --store-dir — possibly in this process —
            # can take ownership immediately.
            self._cluster_cache.close()

    @staticmethod
    def _cluster_synthesis_stats(state) -> dict:
        """The learner's view of the cluster's evaluation work, in the
        unified :data:`repro.synth.backend.STATS_KEYS` schema.

        The learner sees one counted claim per unique design an actor
        first sights (actor-side fronts and in-batch dedup never reach
        the wire), so ``designs == unique_designs`` here; ``synthesized``
        is the fulfilled-lease count — the cluster-wide synthesis work
        after claim/lease dedup.
        """
        from repro.synth.backend import cache_counters

        service = state.cache_service
        lease = service.stats()
        cache = cache_counters(service.cache)
        cache["shared"] = True
        out = {
            "backend": "cluster-service",
            "batches": lease["claim_batches"],
            "designs": lease["claim_keys"],
            "unique_designs": lease["claim_keys"],
            "dedup_saved": 0,
            "cache_hits": cache["hits"],
            "cache_misses": cache["misses"],
            "synthesized": lease["fulfilled"],
            "cache": cache,
            "lease": lease,
        }
        # A layered (memory-over-disk) shared cache also reports its
        # durable tier: `rewrites` there is the exact "re-paid a synthesis
        # we already had" detector the warm-restart gate asserts on.
        disk = getattr(service.cache, "disk", None)
        if disk is not None:
            out["store"] = disk.stats()
        return out

    def _checkpoint_due(self, history: TrainingHistory, last_saved: int) -> bool:
        every = self.runtime.checkpoint_every
        return bool(every) and history.env_steps - last_saved >= every

    def _stop_requested(self, history: TrainingHistory) -> bool:
        stop = self.runtime.stop_after
        return stop is not None and history.env_steps >= stop

    def _run_sync(self, steps: "int | None", resume: bool) -> TrainingHistory:
        if resume:
            total, history, loop_state = self._load(steps)
        else:
            total = steps if steps is not None else self.config.steps
            history = TrainingHistory()
            loop_state = None

        loop = make_loop(
            self.env, self.agent, self.buffer, self.config,
            total, self.config.schedule(total), history,
        )
        if loop_state is not None:
            loop.load_state_dict(loop_state)
            loop.resume()
        else:
            loop.start()

        last_saved = history.env_steps
        while not loop.done:
            loop.tick()
            if self._stop_requested(history) and not loop.done:
                self._save(total, history, loop.state_dict())
                self.preempted = True
                return history
            if self._checkpoint_due(history, last_saved):
                self._save(total, history, loop.state_dict())
                last_saved = history.env_steps

        if self.manager is not None:
            self._save(total, history, loop.state_dict())
        history.synthesis_stats = synthesis_stats(self.env)
        return history

    def _run_async(self, steps: "int | None", resume: bool) -> TrainingHistory:
        from repro.distributed.pipeline import ActorWorker, PolicyHub

        saved_returns = None
        if resume:
            total, history, loop_state = self._load(steps)
            saved_returns = loop_state.get("episode_returns")
        else:
            total = steps if steps is not None else self.config.steps
            history = TrainingHistory()
            for venv in self.actor_envs:
                venv.reset()

        cfg = self.config
        coord = _Coordinator(total, history)
        hub = PolicyHub(self.agent)
        schedule = cfg.schedule(total)
        actors = [
            ActorWorker(
                index=i,
                venv=venv,
                policy=hub.subscribe(),
                buffer=self.buffer,
                schedule=schedule,
                coordinator=coord,
                rng=self._actor_rngs[i],
            )
            for i, venv in enumerate(self.actor_envs)
        ]
        if saved_returns is not None:
            # Restore the per-replica in-flight episode returns, so episodes
            # spanning a preemption report their full accumulated return.
            for actor, returns in zip(actors, saved_returns):
                if len(returns) != actor.venv.num_envs:
                    raise CheckpointError(
                        f"checkpoint has {len(returns)} replica returns for actor "
                        f"{actor.index}, env has {actor.venv.num_envs}"
                    )
                actor.episode_returns = [float(r) for r in returns]

        def loop_state_now():
            return {
                "kind": "async",
                "episode_returns": [list(a.episode_returns) for a in actors],
            }

        for actor in actors:
            actor.start()

        last_saved = history.env_steps
        stopped_early = False
        try:
            while True:
                env_steps = coord.env_steps()
                if any(a.error for a in actors):
                    break
                if self._stop_requested(history):
                    stopped_early = True
                    break
                if (
                    len(self.buffer) >= cfg.warmup_steps
                    and coord.gradient_steps() < grads_allowed(env_steps, total, cfg)
                ):
                    loss = self.agent.train_step(self.buffer.sample(cfg.batch_size))
                    coord.record_loss(loss)
                    if history.gradient_steps % self.runtime.publish_every == 0:
                        hub.publish()
                elif env_steps >= total:
                    break
                else:
                    time.sleep(0.002)
                if self._checkpoint_due(history, last_saved):
                    coord.pause_actors()
                    try:
                        self._save(total, history, loop_state_now())
                        last_saved = history.env_steps
                    finally:
                        coord.resume_actors()
        finally:
            coord.abort()
            for actor in actors:
                actor.join(timeout=60.0)
        for actor in actors:
            if actor.error is not None:
                raise RuntimeError(
                    f"actor {actor.index} failed: {actor.error!r}"
                ) from actor.error

        if self.manager is not None:
            # Like the sync path: a checkpoint_dir always gets a final (or
            # halt-point) snapshot, so --resume can extend any run.
            self._save(total, history, loop_state_now())
        self.preempted = stopped_early and history.env_steps < total
        history.synthesis_stats = synthesis_stats(self.actor_envs)
        return history
