"""Experience replay buffer.

Stores dense feature tensors plus next-state legal masks (needed for the
masked double-DQN argmax). Ring-buffer semantics with uniform sampling —
the paper's setup ("an experience buffer with up to 4x10^5 elements").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng


@dataclass
class Transition:
    """One environment transition, already featurized."""

    state: np.ndarray        # (4, N, N)
    action: int              # flat action index
    reward: np.ndarray       # (2,) scaled [r_area, r_delay]
    next_state: np.ndarray   # (4, N, N)
    next_mask: np.ndarray    # (A,) legal actions in the next state
    done: bool


class ReplayBuffer:
    """Fixed-capacity ring buffer with uniform batch sampling."""

    def __init__(self, capacity: int, rng=None):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._rng = ensure_rng(rng)
        self._storage: "list[Transition]" = []
        self._cursor = 0

    def push(self, transition: Transition) -> None:
        """Insert, overwriting the oldest entry once full."""
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._cursor] = transition
        self._cursor = (self._cursor + 1) % self.capacity

    def __len__(self) -> int:
        return len(self._storage)

    def sample(self, batch_size: int) -> "dict[str, np.ndarray]":
        """Uniformly sample a batch as stacked arrays.

        Keys: ``states (B,4,N,N)``, ``actions (B,)``, ``rewards (B,2)``,
        ``next_states (B,4,N,N)``, ``next_masks (B,A)``, ``dones (B,)``.
        """
        if not self._storage:
            raise ValueError("cannot sample from an empty buffer")
        idx = self._rng.integers(len(self._storage), size=batch_size)
        items = [self._storage[i] for i in idx]
        return {
            "states": np.stack([t.state for t in items]),
            "actions": np.array([t.action for t in items], dtype=np.int64),
            "rewards": np.stack([t.reward for t in items]),
            "next_states": np.stack([t.next_state for t in items]),
            "next_masks": np.stack([t.next_mask for t in items]),
            "dones": np.array([t.done for t in items], dtype=bool),
        }
