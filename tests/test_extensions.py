"""Tests for the future-work extensions: power, nonuniform timing,
Verilog export, greedy evaluation rollouts."""

import pytest

from repro.cells import industrial8nm, nangate45
from repro.env import PrefixEnv
from repro.netlist import prefix_adder_netlist, to_verilog
from repro.prefix import brent_kung, kogge_stone, ripple_carry, sklansky
from repro.rl import ScalarizedDoubleDQN, Trainer, TrainerConfig, evaluate_policy, greedy_rollout
from repro.sta import analyze_timing, estimate_power
from repro.synth import AnalyticalEvaluator


@pytest.fixture(scope="module")
def lib():
    return nangate45()


class TestPowerModel:
    def test_power_positive_components(self, lib):
        nl = prefix_adder_netlist(sklansky(8), lib)
        report = estimate_power(nl, rng=0)
        assert report.dynamic > 0
        assert report.leakage > 0
        assert report.total == pytest.approx(report.dynamic + report.leakage)

    def test_toggle_rates_bounded(self, lib):
        nl = prefix_adder_netlist(brent_kung(8), lib)
        report = estimate_power(nl, rng=1)
        for net, alpha in report.toggle_rates.items():
            assert 0.0 <= alpha <= 1.0

    def test_bigger_circuits_burn_more(self, lib):
        small = estimate_power(prefix_adder_netlist(brent_kung(16), lib), rng=0)
        big = estimate_power(prefix_adder_netlist(kogge_stone(16), lib), rng=0)
        assert big.total > small.total

    def test_leakage_scales_with_area(self, lib):
        nl = prefix_adder_netlist(sklansky(8), lib)
        report = estimate_power(nl, rng=0)
        from repro.sta.power import LEAKAGE_PER_UM2

        assert report.leakage == pytest.approx(LEAKAGE_PER_UM2["nangate45"] * nl.area())

    def test_voltage_scaling_quadratic(self, lib):
        nl = prefix_adder_netlist(sklansky(8), lib)
        low = estimate_power(nl, voltage=0.8, rng=0)
        high = estimate_power(nl, voltage=1.6, rng=0)
        assert high.dynamic == pytest.approx(4.0 * low.dynamic, rel=1e-9)

    def test_deterministic_with_seed(self, lib):
        nl = prefix_adder_netlist(sklansky(8), lib)
        a = estimate_power(nl, rng=7)
        b = estimate_power(nl, rng=7)
        assert a.dynamic == b.dynamic

    def test_8nm_library_lower_dynamic(self, lib):
        g = sklansky(8)
        p45 = estimate_power(prefix_adder_netlist(g, lib), rng=0)
        p8 = estimate_power(prefix_adder_netlist(g, industrial8nm()), rng=0)
        assert p8.dynamic < p45.dynamic  # smaller caps at the small node


class TestNonuniformTiming:
    def test_late_input_shifts_delay(self, lib):
        nl = prefix_adder_netlist(ripple_carry(8), lib)
        base = analyze_timing(nl)
        skewed = analyze_timing(nl, input_arrivals={"a0": 0.5})
        assert skewed.delay >= base.delay + 0.4

    def test_late_noncritical_input_harmless(self, lib):
        nl = prefix_adder_netlist(ripple_carry(8), lib)
        base = analyze_timing(nl)
        # a7 only feeds the top bit of a ripple chain — tiny slack impact.
        skewed = analyze_timing(nl, input_arrivals={"a7": 0.01})
        assert skewed.delay <= base.delay + 0.02

    def test_unknown_input_rejected(self, lib):
        nl = prefix_adder_netlist(ripple_carry(4), lib)
        with pytest.raises(ValueError, match="non-input"):
            analyze_timing(nl, input_arrivals={"zz": 1.0})

    def test_uniform_zero_matches_default(self, lib):
        nl = prefix_adder_netlist(sklansky(8), lib)
        base = analyze_timing(nl)
        explicit = analyze_timing(nl, input_arrivals={n: 0.0 for n in nl.inputs})
        assert explicit.delay == pytest.approx(base.delay)


class TestVerilogExport:
    def test_module_structure(self, lib):
        nl = prefix_adder_netlist(sklansky(4), lib)
        text = to_verilog(nl)
        assert text.startswith("//")
        assert f"module {nl.name} (" in text
        assert text.rstrip().endswith("endmodule")

    def test_all_instances_emitted(self, lib):
        nl = prefix_adder_netlist(brent_kung(8), lib)
        text = to_verilog(nl)
        for name, inst in nl.instances.items():
            assert f"{inst.cell.name} {name} (" in text

    def test_ports_declared(self, lib):
        nl = prefix_adder_netlist(ripple_carry(4), lib)
        text = to_verilog(nl)
        for port in nl.inputs:
            assert f"input {port};" in text
        for port in nl.outputs:
            assert f"output {port};" in text

    def test_custom_module_name(self, lib):
        nl = prefix_adder_netlist(sklansky(4), lib)
        assert "module my_adder (" in to_verilog(nl, module_name="my_adder")

    def test_pin_connections_named(self, lib):
        nl = prefix_adder_netlist(sklansky(4), lib)
        text = to_verilog(nl)
        assert ".A1(" in text and ".ZN(" in text


class TestGreedyEvaluation:
    def _trained(self, steps=80):
        env = PrefixEnv(6, AnalyticalEvaluator(0.5, 0.5), horizon=10, rng=0)
        agent = ScalarizedDoubleDQN(6, blocks=0, channels=4, lr=1e-3, rng=0)
        Trainer(env, agent, TrainerConfig(steps=steps, batch_size=4, warmup_steps=8), rng=0).run()
        return env, agent

    def test_rollout_structure(self):
        env, agent = self._trained()
        rollout = greedy_rollout(env, agent, start=ripple_carry(6))
        assert rollout.states[0] == ripple_carry(6)
        assert len(rollout.states) <= env.horizon + 1
        assert rollout.best_graph.is_legal()

    def test_rollout_deterministic(self):
        env, agent = self._trained()
        a = greedy_rollout(env, agent, start=sklansky(6))
        b = greedy_rollout(env, agent, start=sklansky(6))
        assert [s.key() for s in a.states] == [s.key() for s in b.states]

    def test_best_cost_never_above_start(self):
        env, agent = self._trained()
        rollout = greedy_rollout(env, agent, start=ripple_carry(6))
        start_metrics = env.evaluator.evaluate(ripple_carry(6))
        start_cost = agent.w[0] * start_metrics.area + agent.w[1] * start_metrics.delay
        assert rollout.best_cost <= start_cost + 1e-9

    def test_evaluate_policy_archive(self):
        env, agent = self._trained()
        archive = evaluate_policy(env, agent, episodes=2)
        assert len(archive) >= 1
        for _, _, graph in archive.entries():
            assert graph.n == 6
