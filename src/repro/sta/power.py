"""Power estimation — the paper's declared future-work objective.

Section V-A: "circuit power is an important metric that should ideally be
jointly optimized with area and delay. However, due to the computational
requirements of power simulation, we did not integrate this as a third
objective. We leave the integration of a power objective ... as future
work." This module provides that integration point:

- **dynamic power** from measured switching activity: random vectors run
  through the bit-parallel simulator, per-net toggle rates extracted from
  lane-to-lane transitions, energy = alpha * C * V^2 * f summed over nets;
- **leakage power** proportional to cell area (the first-order standard-
  cell model).

:class:`repro.synth.evaluator.SynthesisEvaluator` exposes it through
``evaluate_power``, and the extension benchmark shows the three-objective
trade-off the paper anticipated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist.ir import Netlist
from repro.netlist.simulate import simulate
from repro.sta.timing import net_load
from repro.utils.rng import ensure_rng

LEAKAGE_PER_UM2 = {"nangate45": 0.12, "industrial8nm": 0.35}
"""uW of leakage per um^2 of cell area (leakage density grows at small nodes)."""


@dataclass(frozen=True)
class PowerReport:
    """Estimated power at the given voltage/frequency operating point.

    All power figures in microwatts; ``toggle_rates`` maps each net to its
    measured transitions-per-cycle.
    """

    dynamic: float
    leakage: float
    voltage: float
    frequency: float
    toggle_rates: "dict[str, float]"

    @property
    def total(self) -> float:
        return self.dynamic + self.leakage


def _toggle_rate(values: np.ndarray) -> float:
    """Average transitions per cycle across the packed pattern lanes.

    Adjacent lanes of the uint64 pattern word are treated as consecutive
    cycles; a 1-bit in ``v ^ (v >> 1)`` marks a transition.
    """
    v = np.atleast_1d(values)
    transitions = v ^ (v >> np.uint64(1))
    mask = np.uint64((1 << 63) - 1)
    count = sum(int(t & mask).bit_count() for t in transitions.reshape(-1))
    return count / (63 * v.size)


def estimate_power(
    netlist: Netlist,
    voltage: float = 1.1,
    frequency_ghz: float = 1.0,
    num_words: int = 4,
    rng=None,
) -> PowerReport:
    """Estimate dynamic + leakage power of a netlist.

    Dynamic energy per net: ``0.5 * alpha * C_net * V^2`` per cycle, with
    alpha measured by simulating random input vectors (inputs toggle with
    activity ~0.5, the usual datapath assumption). Capacitances come from
    the same load model STA uses, so power and timing are consistent.
    """
    gen = ensure_rng(rng)
    all_ones = np.uint64(0xFFFFFFFFFFFFFFFF)
    inputs = {
        net: gen.integers(0, all_ones, size=num_words, dtype=np.uint64, endpoint=True)
        for net in netlist.inputs
    }
    values = simulate(netlist, inputs)

    toggle_rates: "dict[str, float]" = {}
    dynamic_uw = 0.0
    for net, vals in values.items():
        alpha = _toggle_rate(vals)
        toggle_rates[net] = alpha
        cap_ff = net_load(netlist, net)
        # 0.5 * alpha * C * V^2 * f ; fF * V^2 * GHz = uW.
        dynamic_uw += 0.5 * alpha * cap_ff * voltage**2 * frequency_ghz

    leak_density = LEAKAGE_PER_UM2.get(netlist.library.name, 0.12)
    leakage_uw = leak_density * netlist.area()
    return PowerReport(
        dynamic=dynamic_uw,
        leakage=leakage_uw,
        voltage=voltage,
        frequency=frequency_ghz,
        toggle_rates=toggle_rates,
    )
