"""Event log + trace context: JSONL shape, spans, scope propagation."""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.obs.events import RUN_ENV


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts (and leaves) with obs unconfigured."""
    obs.shutdown()
    os.environ.pop(RUN_ENV, None)
    yield
    obs.shutdown()
    os.environ.pop(RUN_ENV, None)


def read_events(obs_dir):
    events = []
    for path in sorted(obs_dir.glob("*.jsonl")):
        for line in path.read_text().splitlines():
            events.append(json.loads(line))
    return events


class TestDisabled:
    def test_emit_without_configure_is_a_noop(self):
        assert not obs.enabled()
        obs.emit("anything", n=1)  # must not raise

    def test_span_still_times_when_disabled(self):
        with obs.span("work") as sp:
            pass
        assert sp.seconds >= 0.0
        assert sp.span_id is None


class TestConfigured:
    def test_configure_writes_per_process_jsonl(self, tmp_path):
        obs.configure(str(tmp_path), "learner")
        obs.emit("hello", n=3)
        obs.shutdown()
        files = list(tmp_path.glob("*.jsonl"))
        assert len(files) == 1
        assert files[0].name == f"learner-{os.getpid()}.jsonl"
        events = read_events(tmp_path)
        kinds = [e["event"] for e in events]
        assert kinds == ["process_start", "hello", "process_end"]
        hello = events[1]
        assert hello["n"] == 3
        assert hello["role"] == "learner"
        assert hello["pid"] == os.getpid()
        assert {"ts", "mono", "run"} <= set(hello)

    def test_run_id_is_minted_and_exported(self, tmp_path):
        obs.configure(str(tmp_path), "learner")
        run = obs.run_id()
        assert run and os.environ[RUN_ENV] == run

    def test_run_id_inherited_from_environment(self, tmp_path):
        os.environ[RUN_ENV] = "deadbeef"
        obs.configure(str(tmp_path), "actor")
        assert obs.run_id() == "deadbeef"
        events = read_events(tmp_path)
        assert all(e["run"] == "deadbeef" for e in events)

    def test_span_emits_begin_end_with_duration(self, tmp_path):
        obs.configure(str(tmp_path), "actor")
        with obs.span("round", actor="a0") as sp:
            pass
        obs.shutdown()
        events = read_events(tmp_path)
        begin = next(e for e in events if e["event"] == "begin")
        end = next(e for e in events if e["event"] == "end")
        assert begin["name"] == end["name"] == "round"
        assert begin["span"] == end["span"] == sp.span_id
        assert begin["actor"] == "a0"
        assert end["dur"] == pytest.approx(sp.seconds, abs=1e-3)
        assert "error" not in end

    def test_span_records_exception_name(self, tmp_path):
        obs.configure(str(tmp_path), "actor")
        with pytest.raises(ValueError):
            with obs.span("boom"):
                raise ValueError("x")
        obs.shutdown()
        end = next(e for e in read_events(tmp_path) if e["event"] == "end")
        assert end["error"] == "ValueError"

    def test_nested_spans_carry_parent(self, tmp_path):
        obs.configure(str(tmp_path), "actor")
        with obs.span("outer") as outer:
            with obs.span("inner"):
                pass
        obs.shutdown()
        begins = {e["name"]: e for e in read_events(tmp_path) if e["event"] == "begin"}
        assert "parent" not in begins["outer"]
        assert begins["inner"]["parent"] == outer.span_id


class TestTrace:
    def test_scope_installs_and_restores(self):
        trace = obs.trace.new_trace("run1")
        assert obs.trace.current() is None
        with obs.trace.scope(dict(trace, parent="span9")):
            assert obs.trace.current_id() == trace["id"]
            assert obs.trace.current_span() == "span9"
            wire = obs.trace.wire_context()
            assert wire["id"] == trace["id"]
            assert wire["run"] == "run1"
            assert wire["parent"] == "span9"
        assert obs.trace.current() is None
        assert obs.trace.wire_context() is None

    def test_malformed_scope_is_a_noop(self):
        with obs.trace.scope("garbage"):
            assert obs.trace.current() is None
        with obs.trace.scope({"no": "id"}):
            assert obs.trace.current() is None

    def test_events_inside_scope_carry_the_trace_id(self, tmp_path):
        obs.configure(str(tmp_path), "farm")
        trace = obs.trace.new_trace()
        with obs.trace.scope(trace):
            obs.emit("traced")
        obs.emit("untraced")
        obs.shutdown()
        events = {e["event"]: e for e in read_events(tmp_path)}
        assert events["traced"]["trace"] == trace["id"]
        assert "trace" not in events["untraced"]

    def test_wire_context_parent_tracks_current_span(self, tmp_path):
        obs.configure(str(tmp_path), "actor")
        with obs.trace.scope(obs.trace.new_trace()):
            with obs.span("round") as sp:
                assert obs.trace.wire_context()["parent"] == sp.span_id
