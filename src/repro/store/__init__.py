"""Curve persistence: the :class:`CurveStore` protocol and its tiers.

- :mod:`repro.store.api` — the protocol + :func:`make_store` factory;
- :mod:`repro.store.disk` — durable append-only segmented store;
- :mod:`repro.store.layered` — memory front over a disk store.
"""

from repro.store.api import CurveStore, decode_entries, encode_entries, make_store
from repro.store.disk import DiskStore
from repro.store.layered import LayeredStore

__all__ = [
    "CurveStore",
    "DiskStore",
    "LayeredStore",
    "decode_entries",
    "encode_entries",
    "make_store",
]
