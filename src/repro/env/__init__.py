"""The PrefixRL reinforcement-learning environment (Section IV-A).

States are legal N-input prefix graphs; actions add or delete a node at any
of the ``(N-1)(N-2)/2`` interior grid cells; transitions legalize; rewards
are the (scaled) decrease in evaluated area and delay. Observations are the
paper's ``N x N x 4`` feature tensor (nodelist, minlist, normalized level,
normalized fanout).
"""

from repro.env.features import graph_features, NUM_FEATURE_PLANES
from repro.env.actions import ActionSpace, Action
from repro.env.environment import PrefixEnv, StepResult
from repro.env.vector import VectorPrefixEnv

__all__ = [
    "graph_features",
    "NUM_FEATURE_PLANES",
    "ActionSpace",
    "Action",
    "PrefixEnv",
    "StepResult",
    "VectorPrefixEnv",
]
