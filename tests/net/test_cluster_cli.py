"""End-to-end CLI cluster: learner + real actor subprocesses, resume.

This is the acceptance check of the cluster PR: ``repro cluster
--actors 2`` on localhost completes a short run with *OS-process* actors,
writes a checkpoint, and ``--resume`` extends it to the full budget. The
CI cluster-smoke job runs this file on its own.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")


def run_cli(*args, timeout=240):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


@pytest.mark.slow
def test_cluster_preempt_resume_end_to_end_with_farm(tmp_path):
    ckpt = tmp_path / "ckpt"
    first = run_cli(
        "cluster", "8",
        "--steps", "24",
        "--actors", "2",
        "--envs-per-actor", "2",
        "--farm-workers", "1",
        "--checkpoint-dir", str(ckpt),
        "--stop-after", "12",
        "--seed", "3",
    )
    assert first.returncode == 0, first.stderr
    assert "rerun with --resume" in first.stderr
    assert "warning: actor subprocess" not in first.stderr, first.stderr
    assert "farm workers listening on" in first.stderr
    # At least one actor routed at least one synthesis miss through the
    # farm-worker daemon (the actor→farm routing the CLI flag wires up).
    routed = re.findall(r"farm routed: dispatched=(\d+)", first.stderr)
    assert routed and sum(int(r) for r in routed) >= 1, first.stderr
    assert (ckpt / "LATEST").is_file()

    resumed = run_cli(
        "cluster", "8",
        "--actors", "2",
        "--envs-per-actor", "2",
        "--farm-workers", "1",
        "--checkpoint-dir", str(ckpt),
        "--resume",
        "--seed", "3",
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "warning: actor subprocess" not in resumed.stderr, resumed.stderr
    assert "trained 24 steps" in resumed.stdout
    assert "shared cache:" in resumed.stdout
    assert "lease dedup:" in resumed.stderr
    assert "history frontier" in resumed.stdout
    # Both snapshots exist (preemption point and completion).
    steps = sorted(p.name for p in ckpt.iterdir() if p.name.startswith("step-"))
    assert steps == ["step-00000012", "step-00000024"]


@pytest.mark.slow
def test_cluster_preempt_resume_end_to_end_with_inference(tmp_path):
    """``--inference``: train -> preempt -> resume with act-inference
    served by the shared batched server (the inference-PR acceptance
    run; the marker regex proves at least one actor batch was served
    remotely rather than falling back)."""
    ckpt = tmp_path / "ckpt"
    first = run_cli(
        "cluster", "8",
        "--steps", "24",
        "--actors", "2",
        "--envs-per-actor", "2",
        "--inference",
        "--checkpoint-dir", str(ckpt),
        "--stop-after", "12",
        "--seed", "3",
    )
    assert first.returncode == 0, first.stderr
    assert "rerun with --resume" in first.stderr
    assert "warning: actor subprocess" not in first.stderr, first.stderr
    assert "inference server listening on" in first.stderr
    served = re.findall(r"inference served: requests=(\d+)", first.stderr)
    assert served and sum(int(s) for s in served) >= 1, first.stderr
    assert "inference server served: batches=" in first.stderr
    assert (ckpt / "LATEST").is_file()

    resumed = run_cli(
        "cluster", "8",
        "--actors", "2",
        "--envs-per-actor", "2",
        "--inference",
        "--checkpoint-dir", str(ckpt),
        "--resume",
        "--seed", "3",
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "warning: actor subprocess" not in resumed.stderr, resumed.stderr
    assert "trained 24 steps" in resumed.stdout
    steps = sorted(p.name for p in ckpt.iterdir() if p.name.startswith("step-"))
    assert steps == ["step-00000012", "step-00000024"]


@pytest.mark.slow
def test_cluster_obs_dir_produces_a_traceable_ledger(tmp_path):
    """``--obs-dir``: the whole fleet (learner, actor subprocesses, farm
    worker) writes one merged JSONL ledger — well-formed spans, at least
    one trace crossing process boundaries — and ``repro obs report``
    reconstructs the round breakdown from it after the run."""
    obs_dir = tmp_path / "obs"
    result = run_cli(
        "cluster", "8",
        "--steps", "12",
        "--actors", "2",
        "--envs-per-actor", "2",
        "--farm-workers", "1",
        "--obs-dir", str(obs_dir),
        "--seed", "3",
    )
    assert result.returncode == 0, result.stderr
    assert "warning: actor subprocess" not in result.stderr, result.stderr

    # One JSONL per process, named for its role.
    roles = {p.name.rsplit("-", 1)[0] for p in obs_dir.glob("*.jsonl")}
    assert {"learner", "actor", "farm"} <= roles, sorted(obs_dir.iterdir())

    sys.path.insert(0, SRC)
    from repro.obs.report import cross_process_traces, load_events, span_problems

    events = load_events(obs_dir)
    assert span_problems(events) == []
    # Everyone stamped the learner-minted run id.
    assert len({e["run"] for e in events if "run" in e}) == 1
    # At least one round's trace crossed a process boundary, and at least
    # one reached all the way through learner, actor and farm worker.
    crossing = cross_process_traces(events)
    assert crossing
    trace_roles = [
        {e.get("role") for e in trace_events} for trace_events in crossing.values()
    ]
    assert any({"learner", "actor"} <= roles_ for roles_ in trace_roles)
    assert any("farm" in roles_ for roles_ in trace_roles), (
        "no trace reached the farm worker"
    )

    report = run_cli("obs", "report", str(obs_dir))
    assert report.returncode == 0, report.stderr
    assert "spans: well-formed" in report.stdout
    assert "cross-process" in report.stdout
    assert "slowest rounds" in report.stdout


@pytest.mark.slow
def test_stats_cli_renders_a_live_fleet(tmp_path):
    """``repro stats --connect`` dials a live learner as an observer and
    renders the fleet table (membership, cache, merged obs counters)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-learner", "8", "--steps", "12"],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        assert "learner listening on" in line, line
        address = line.strip().rsplit(" ", 1)[-1]

        result = run_cli("stats", "--connect", address)
        assert result.returncode == 0, result.stderr
        assert f"fleet @ {address}:" in result.stdout
        assert "membership: joins=0" in result.stdout
        assert "cache: entries=" in result.stdout
        assert "obs sources:" in result.stdout
    finally:
        proc.terminate()
        proc.wait(timeout=10)

    # An unreachable learner is a clean failure, not a traceback.
    dead = run_cli("stats", "--connect", "127.0.0.1:9")
    assert dead.returncode == 1
    assert "cannot reach learner" in dead.stderr


@pytest.mark.slow
def test_farm_worker_cli_serves(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "farm-worker", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        assert "farm worker listening on" in line
        address = line.strip().rsplit(" ", 1)[-1]

        sys.path.insert(0, SRC)
        from repro.distributed import SynthesisFarm
        from repro.prefix import sklansky

        farm = SynthesisFarm("nangate45", num_workers=0, remote_workers=[address])
        curves = farm.evaluate_curves([sklansky(8)])
        assert len(curves) == 1 and len(curves[0].points()) >= 2
        farm.close()
    finally:
        proc.terminate()
        proc.wait(timeout=10)
