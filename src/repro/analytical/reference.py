"""Reference analytical-delay evaluation (preserved oracle).

This is the whole-grid fixpoint-relaxation implementation of
:func:`repro.analytical.model.analytical_delay` exactly as it shipped
before the level-bucketed sweep replaced it: ``depth(graph) + 1``
vectorized relaxation sweeps over every non-input node. It is kept
verbatim as the bit-identity oracle for the production path — the
level-bucketed sweep performs the *same* per-node operation
``delay + max(arrival[upper], arrival[lower])`` exactly once per node,
so the two must agree to the last bit on every graph
(``tests/analytical/test_model.py`` property-tests this on randomized
and deep ripple graphs).

Do not optimize this module; its value is staying unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.analytical.model import _node_delays
from repro.prefix.graph import PrefixGraph, relax_max_plus


def analytical_delay_reference(graph: PrefixGraph) -> float:
    """Worst accumulated node-delay path into any output node.

    Computed by the same whole-grid fixpoint relaxation as
    :meth:`PrefixGraph.levels` (depth(graph) + 1 vectorized sweeps instead
    of a Python visit per cell): arrivals only ever increase toward the
    longest-path fixpoint, and every node of depth <= k is settled after
    ``k`` sweeps.
    """
    n = graph.n
    delays = _node_delays(graph)
    arrival = np.zeros((n, n), dtype=np.float64)
    idx = np.arange(n)
    arrival[idx, idx] = delays[idx, idx]
    ms, ls = np.nonzero(np.tril(graph.grid, k=-1))
    if ms.size:
        ups = graph.upper_parent_map()[ms, ls]
        relax_max_plus(arrival, ms, ls, ups, delays[ms, ls])
    return float(arrival[:, 0].max())
