"""Cell and library intermediate representation.

A :class:`Cell` is one sized variant of a logic function (``NAND2_X2``); a
:class:`CellLibrary` holds every variant plus the wire-load constants the
timing engine needs. Logic function semantics (pin lists, boolean behaviour)
are fixed per function name in :data:`CELL_FUNCTIONS` so netlist generation,
simulation and timing all agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CellFunction:
    """Semantics of a logic function shared by all its sized variants.

    ``inputs`` orders the pins; ``output`` names the single output pin
    (inverting cells use ``ZN`` by library convention, non-inverting ``Z``).
    ``commutative_groups`` lists pin groups that may be freely permuted —
    the pin-swapping optimization pass relies on this.
    """

    name: str
    inputs: "tuple[str, ...]"
    output: str
    commutative_groups: "tuple[tuple[str, ...], ...]"


CELL_FUNCTIONS = {
    "INV": CellFunction("INV", ("A",), "ZN", ()),
    "BUF": CellFunction("BUF", ("A",), "Z", ()),
    "NAND2": CellFunction("NAND2", ("A1", "A2"), "ZN", (("A1", "A2"),)),
    "NOR2": CellFunction("NOR2", ("A1", "A2"), "ZN", (("A1", "A2"),)),
    "AND2": CellFunction("AND2", ("A1", "A2"), "Z", (("A1", "A2"),)),
    "OR2": CellFunction("OR2", ("A1", "A2"), "Z", (("A1", "A2"),)),
    # AOI21: ZN = !((B1 & B2) | A) ; OAI21: ZN = !((B1 | B2) & A)
    "AOI21": CellFunction("AOI21", ("A", "B1", "B2"), "ZN", (("B1", "B2"),)),
    "OAI21": CellFunction("OAI21", ("A", "B1", "B2"), "ZN", (("B1", "B2"),)),
    "XOR2": CellFunction("XOR2", ("A", "B"), "Z", (("A", "B"),)),
    "XNOR2": CellFunction("XNOR2", ("A", "B"), "ZN", (("A", "B"),)),
}
"""Every function the netlist layer may instantiate."""


@dataclass(frozen=True)
class Cell:
    """One sized variant of a logic function.

    Attributes:
        name: full library name, e.g. ``NAND2_X2``.
        function: key into :data:`CELL_FUNCTIONS`.
        drive: relative drive strength (1, 2, 4, ...).
        area: cell area in um^2.
        input_caps: input pin name -> capacitance (fF).
        resistance: output drive resistance (ns per fF of load).
        intrinsics: input pin name -> intrinsic arc delay (ns).
    """

    name: str
    function: str
    drive: int
    area: float
    input_caps: "dict[str, float]" = field(hash=False)
    resistance: float = 0.0
    intrinsics: "dict[str, float]" = field(default=None, hash=False)

    @property
    def spec(self) -> CellFunction:
        """The shared function semantics for this cell."""
        return CELL_FUNCTIONS[self.function]

    @property
    def output_pin(self) -> str:
        return self.spec.output

    @property
    def input_pins(self) -> "tuple[str, ...]":
        return self.spec.inputs

    def arc_delay(self, in_pin: str, load: float) -> float:
        """Delay of the ``in_pin -> output`` arc driving ``load`` fF."""
        return self.intrinsics[in_pin] + self.resistance * load


class CellLibrary:
    """A named collection of cells plus wire-load constants.

    Attributes:
        name: library identifier (used in synthesis-cache keys).
        wire_cap_per_fanout: extra fF of net load per sink (short-net model).
        output_port_cap: fF load presented by a primary output.
    """

    def __init__(
        self,
        name: str,
        cells: "list[Cell]",
        wire_cap_per_fanout: float,
        output_port_cap: float,
    ):
        self.name = name
        self.wire_cap_per_fanout = wire_cap_per_fanout
        self.output_port_cap = output_port_cap
        self._by_name: "dict[str, Cell]" = {}
        self._by_function: "dict[str, list[Cell]]" = {}
        for cell in cells:
            if cell.function not in CELL_FUNCTIONS:
                raise ValueError(f"unknown cell function {cell.function!r}")
            if set(cell.input_caps) != set(cell.input_pins):
                raise ValueError(f"{cell.name}: input_caps pins do not match function pins")
            if set(cell.intrinsics) != set(cell.input_pins):
                raise ValueError(f"{cell.name}: intrinsics pins do not match function pins")
            if cell.name in self._by_name:
                raise ValueError(f"duplicate cell name {cell.name}")
            self._by_name[cell.name] = cell
            self._by_function.setdefault(cell.function, []).append(cell)
        for variants in self._by_function.values():
            variants.sort(key=lambda c: c.drive)

    def cell(self, name: str) -> Cell:
        """Look up a cell by full name (``NAND2_X2``)."""
        return self._by_name[name]

    def variants(self, function: str) -> "list[Cell]":
        """All drive variants of ``function``, ascending drive."""
        return list(self._by_function[function])

    def smallest(self, function: str) -> Cell:
        """Minimum-drive variant (the netlist generator's default pick)."""
        return self._by_function[function][0]

    def pick(self, function: str, drive: int) -> Cell:
        """Variant of ``function`` with exactly ``drive``."""
        for cell in self._by_function[function]:
            if cell.drive == drive:
                return cell
        raise KeyError(f"no {function} variant with drive {drive} in {self.name}")

    def next_size_up(self, cell: Cell) -> "Cell | None":
        """The next-stronger variant, or None at the top of the range."""
        variants = self._by_function[cell.function]
        idx = variants.index(cell)
        return variants[idx + 1] if idx + 1 < len(variants) else None

    def next_size_down(self, cell: Cell) -> "Cell | None":
        """The next-weaker variant, or None at the bottom of the range."""
        variants = self._by_function[cell.function]
        idx = variants.index(cell)
        return variants[idx - 1] if idx > 0 else None

    def functions(self) -> "list[str]":
        """Functions available in this library."""
        return sorted(self._by_function)

    def __repr__(self) -> str:
        return f"CellLibrary({self.name!r}, {len(self._by_name)} cells)"


def build_scaled_family(
    function: str,
    drives: "tuple[int, ...]",
    base_area: float,
    area_step: float,
    base_caps: "dict[str, float]",
    base_resistance: float,
    intrinsics: "dict[str, float]",
    intrinsic_improvement: float = 0.9,
) -> "list[Cell]":
    """Generate sized variants of one function with standard scaling rules.

    Drive X_k divides output resistance by ``k``, multiplies input caps by
    ``k`` and grows area sub-linearly (``base * (1 + area_step*(k-1))``);
    intrinsic delay improves slightly with size. These are the scaling
    relationships cell libraries actually exhibit and are what makes gate
    sizing a genuine trade-off.
    """
    cells = []
    for k in drives:
        cells.append(
            Cell(
                name=f"{function}_X{k}",
                function=function,
                drive=k,
                area=round(base_area * (1.0 + area_step * (k - 1)), 4),
                input_caps={p: round(c * k, 4) for p, c in base_caps.items()},
                resistance=base_resistance / k,
                intrinsics={
                    p: round(d * (intrinsic_improvement ** (k.bit_length() - 1)), 6)
                    for p, d in intrinsics.items()
                },
            )
        )
    return cells
