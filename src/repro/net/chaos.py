"""Fault injection for the cluster: a schedulable TCP chaos proxy.

:class:`ChaosProxy` sits between a framed-protocol client and a real
server, forwarding bytes both ways while letting a test (or the chaos CI
gate) inject the failures a production fleet actually sees:

- ``delay`` — added per-chunk latency (slow links, GC pauses);
- ``blackhole`` — accept traffic but forward nothing (partitions that
  look like a live peer going silent: the heartbeat-timeout case);
- ``truncate_next()`` — forward half of the next chunk, then sever that
  link (the mid-frame disconnect every ``recv_exactly`` loop must treat
  as :class:`~repro.net.protocol.ConnectionClosed`);
- ``sever()`` — cut every live link at once (process kill, host reboot);
- ``sever_after_bytes(n)`` — schedule a sever once ``n`` more forwarded
  bytes cross, so a failure lands mid-round without the test sleeping
  and hoping.

The proxy is pure stdlib and deliberately dumb: it never parses frames,
so what the endpoints observe is exactly what a broken network produces.

:func:`kill_process` / :func:`wait_until` are the subprocess-kill and
bounded-wait halves of the chaos test suite — every wait in a chaos test
is ``wait_until`` with a deadline and a message, never a bare sleep.
"""

from __future__ import annotations

import signal
import socket
import threading
import time

_CHUNK = 65536


class ChaosProxy:
    """A TCP proxy with injectable faults between ``listen`` and ``target``."""

    def __init__(
        self,
        target: "tuple[str, int]",
        listen: "tuple[str, int]" = ("127.0.0.1", 0),
    ):
        self.target = target
        self.delay = 0.0
        self.blackhole = False
        self._truncate_next = False
        self._sever_at: "int | None" = None
        self.connections = 0
        self.bytes_forwarded = 0
        self.bytes_dropped = 0
        self.severed = 0
        self._lock = threading.Lock()
        self._links: "set[socket.socket]" = set()
        self._closing = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        # A short accept timeout lets the loop notice `_closing` promptly;
        # closing a listener does not reliably wake a blocked accept().
        self._listener.settimeout(0.25)
        self._listener.bind(listen)
        self._listener.listen()
        self._accept_thread: "threading.Thread | None" = None

    @property
    def address(self) -> "tuple[str, int]":
        return self._listener.getsockname()[:2]

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ChaosProxy":
        if self._accept_thread is not None:
            raise RuntimeError("proxy already started")
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._closing = True
        self._listener.close()
        self.sever()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
            self._accept_thread = None

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- fault controls --------------------------------------------------

    def sever(self) -> int:
        """Cut every live link now; returns how many sockets were closed."""
        with self._lock:
            links, self._links = self._links, set()
        for sock in links:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()
        if links and not self._closing:
            self.severed += 1
        return len(links)

    def truncate_next(self) -> None:
        """Sever the next forwarding link mid-chunk (a torn frame)."""
        self._truncate_next = True

    def sever_after_bytes(self, more: int) -> None:
        """One-shot: sever all links once ``more`` further bytes forward."""
        self._sever_at = self.bytes_forwarded + more

    # -- plumbing --------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _addr = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.target, timeout=10.0)
            except OSError:
                client.close()
                continue
            # The pumps are a dumb pipe: block forever, never idle out
            # (accepted sockets may inherit the listener's accept timeout,
            # and create_connection leaves its dial timeout armed).
            client.settimeout(None)
            upstream.settimeout(None)
            self.connections += 1
            with self._lock:
                self._links.add(client)
                self._links.add(upstream)
            for src, dst in ((client, upstream), (upstream, client)):
                threading.Thread(
                    target=self._pump, args=(src, dst), daemon=True
                ).start()

    def _close_pair(self, *socks: socket.socket) -> None:
        with self._lock:
            for sock in socks:
                self._links.discard(sock)
        for sock in socks:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            sock.close()

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        while True:
            try:
                chunk = src.recv(_CHUNK)
            except OSError:
                chunk = b""
            if not chunk:
                self._close_pair(src, dst)
                return
            if self.blackhole:
                self.bytes_dropped += len(chunk)
                continue
            if self.delay:
                time.sleep(self.delay)
            if self._truncate_next:
                self._truncate_next = False
                half = chunk[: max(len(chunk) // 2, 1)]
                try:
                    dst.sendall(half)
                except OSError:
                    pass
                self.bytes_forwarded += len(half)
                self.bytes_dropped += len(chunk) - len(half)
                self.severed += 1
                self._close_pair(src, dst)
                return
            try:
                dst.sendall(chunk)
            except OSError:
                self._close_pair(src, dst)
                return
            self.bytes_forwarded += len(chunk)
            if self._sever_at is not None and self.bytes_forwarded >= self._sever_at:
                self._sever_at = None
                self.sever()
                return


def kill_process(proc, sig: int = signal.SIGKILL, timeout: float = 10.0) -> int:
    """Deliver ``sig`` and reap; returns the exit code (signal-negative)."""
    if proc.poll() is None:
        proc.send_signal(sig)
    return proc.wait(timeout=timeout)


def wait_until(
    predicate,
    timeout: float,
    interval: float = 0.02,
    message: str = "condition",
):
    """Poll ``predicate`` until truthy; raise with ``message`` at deadline.

    The chaos suite's one sanctioned wait: bounded, with a failure message
    naming what never happened — never sleep-and-hope.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out after {timeout:.1f}s waiting for {message}")
        time.sleep(interval)
