"""Optimizers over :class:`repro.nn.layers.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Parameter


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, params: "list[Parameter]", lr: float = 0.01, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for p, v in zip(self.params, self._velocity):
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.value -= self.lr * v
            else:
                p.value -= self.lr * p.grad

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba) — the paper trains with lr 4e-5 (Section IV-C)."""

    def __init__(
        self,
        params: "list[Parameter]",
        lr: float = 4e-5,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        grad_clip: "float | None" = None,
    ):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.value) for p in self.params]
        self._v = [np.zeros_like(p.value) for p in self.params]
        self._t = 0

    def step(self) -> None:
        """Apply one bias-corrected Adam update."""
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        correction1 = 1.0 - b1**self._t
        correction2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            grad = p.grad
            if self.grad_clip is not None:
                grad = np.clip(grad, -self.grad_clip, self.grad_clip)
            m *= b1
            m += (1 - b1) * grad
            v *= b2
            v += (1 - b2) * grad**2
            mhat = m / correction1
            vhat = v / correction2
            p.value -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    # -- persistence -----------------------------------------------------

    def state_dict(self) -> dict:
        """Moment estimates and step count (parameter order is positional)."""
        return {
            "t": self._t,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output onto the same parameter list."""
        m, v = state["m"], state["v"]
        if len(m) != len(self.params) or len(v) != len(self.params):
            raise ValueError(
                f"optimizer state has {len(m)} slots, "
                f"optimizer tracks {len(self.params)} parameters"
            )
        self._t = int(state["t"])
        for slot, arr in zip(self._m, m):
            if slot.shape != np.asarray(arr).shape:
                raise ValueError(
                    f"optimizer moment shape mismatch: {np.asarray(arr).shape} "
                    f"vs {slot.shape}"
                )
            slot[...] = arr
        for slot, arr in zip(self._v, v):
            slot[...] = arr
