"""Property tests: vectorized analytics vs the pure-Python oracles.

The vectorized ``PrefixGraph`` analytics (upper-parent map, levels,
fanouts, minlist, children, validation, legalization) must be
*bit-identical* — same values, same dtypes — to the seed's loop
implementations (preserved in :mod:`repro.prefix.reference`) and
consistent with the paper's literal Algorithm 1
(:class:`repro.prefix.legalize.Algorithm1State`) across random legal
graphs at n in {4, 8, 16, 32}.
"""

import numpy as np
import pytest

from repro.prefix import PrefixGraph, ripple_carry, sklansky
from repro.prefix import reference as ref
from repro.prefix.legalize import (
    Algorithm1State,
    derive_minlist,
    legalize_minlist,
    upper_parent_map,
)
from repro.prefix.structures import REGULAR_STRUCTURES
from tests.conftest import random_walk_graph

WIDTHS = (4, 8, 16, 32)


def corpus(n, rng, walks=6, steps=25):
    """Random legal graphs plus the regular structures at width ``n``."""
    graphs = [random_walk_graph(n, steps, rng) for _ in range(walks)]
    graphs += [ctor(n) for ctor in REGULAR_STRUCTURES.values()]
    return graphs


class TestAgainstLoopImplementations:
    @pytest.mark.parametrize("n", WIDTHS)
    def test_levels_bit_identical(self, n, rng):
        for g in corpus(n, rng):
            expected = ref.LoopAnalytics(g.grid).levels()
            assert np.array_equal(g.levels(), expected)
            assert g.levels().dtype == expected.dtype

    @pytest.mark.parametrize("n", WIDTHS)
    def test_fanouts_bit_identical(self, n, rng):
        for g in corpus(n, rng):
            expected = ref.LoopAnalytics(g.grid).fanouts()
            assert np.array_equal(g.fanouts(), expected)
            assert g.fanouts().dtype == expected.dtype

    @pytest.mark.parametrize("n", WIDTHS)
    def test_minlist_bit_identical(self, n, rng):
        for g in corpus(n, rng):
            expected = ref.LoopAnalytics(g.grid).minlist()
            assert np.array_equal(g.minlist(), expected)
            assert g.minlist().dtype == expected.dtype

    @pytest.mark.parametrize("n", WIDTHS)
    def test_children_identical_everywhere(self, n, rng):
        for g in corpus(n, rng, walks=3):
            ana = ref.LoopAnalytics(g.grid)
            for m in range(n):
                for l in range(m + 1):
                    assert g.children(m, l) == ana.children(m, l)

    @pytest.mark.parametrize("n", WIDTHS)
    def test_upper_parent_map_matches_row_scans(self, n, rng):
        for g in corpus(n, rng, walks=3):
            ana = ref.LoopAnalytics(g.grid)
            up = upper_parent_map(g.grid)
            for m in range(n):
                for l in range(m):
                    assert (m, int(up[m, l])) == ana.upper_parent(m, l)
                    assert g.parents(m, l) == ana.parents(m, l)

    @pytest.mark.parametrize("n", WIDTHS)
    def test_legalize_minlist_bit_identical(self, n, rng):
        for g in corpus(n, rng):
            min_grid = derive_minlist(g.grid)
            assert np.array_equal(
                legalize_minlist(min_grid), ref.legalize_minlist_loop(min_grid)
            )
        # Also from sparse random (not-yet-legal) minlists.
        for _ in range(10):
            mg = rng.random((n, n)) < 0.15
            assert np.array_equal(legalize_minlist(mg), ref.legalize_minlist_loop(mg))

    @pytest.mark.parametrize("n", WIDTHS)
    def test_derive_minlist_bit_identical(self, n, rng):
        for g in corpus(n, rng):
            assert np.array_equal(
                derive_minlist(g.grid), ref.derive_minlist_loop(g.grid)
            )

    @pytest.mark.parametrize("n", WIDTHS)
    def test_validate_accepts_and_rejects_like_loops(self, n, rng):
        for g in corpus(n, rng, walks=3):
            # Legal graphs validate in both implementations (no raise).
            ref.LoopAnalytics(g.grid).validate()
            g.validate()
            # Knock out one interior node's lower parent and both reject.
            interior = g.interior_nodes()
            if not interior:
                continue
            m, l = interior[0]
            lm, ll = g.lower_parent(m, l)
            if ll == 0 or lm == ll:
                continue
            broken = np.array(g.grid)
            broken[lm, ll] = False
            with pytest.raises(ValueError, match="lower parent"):
                ref.LoopAnalytics(broken).validate()
            with pytest.raises(ValueError, match="lower parent"):
                PrefixGraph(broken)


class TestAgainstAlgorithm1:
    """Single actions from random states agree with the paper's pseudocode."""

    @pytest.mark.parametrize("n", WIDTHS)
    def test_action_analytics_match_oracle(self, n, rng):
        for _ in range(6):
            g = random_walk_graph(n, 15, rng)
            alg = Algorithm1State(n)
            ml = derive_minlist(g.grid)
            alg.minlist = {(int(a), int(b)) for a, b in zip(*np.nonzero(ml))}
            alg.legalize()
            assert np.array_equal(alg.grid(), g.grid)

            actions = [("add", m, l) for m in range(n) for l in range(1, m) if g.can_add(m, l)]
            actions += [("del", m, l) for m in range(n) for l in range(1, m) if g.can_delete(m, l)]
            kind, m, l = actions[int(rng.integers(len(actions)))]
            if kind == "add":
                g2 = g.add_node(m, l)
                alg.add(m, l)
            else:
                g2 = g.delete_node(m, l)
                alg.delete(m, l)
            assert np.array_equal(g2.grid, alg.grid())
            # The successor's analytics agree with the loop oracles on the
            # oracle-evolved nodelist.
            ana = ref.LoopAnalytics(alg.grid())
            assert np.array_equal(g2.levels(), ana.levels())
            assert np.array_equal(g2.fanouts(), ana.fanouts())
            assert np.array_equal(g2.minlist(), ana.minlist())


class TestDerivedCaches:
    def test_cached_returns_same_object(self):
        g = sklansky(8)
        a = g.cached("x", lambda graph: np.arange(3))
        b = g.cached("x", lambda graph: np.arange(99))
        assert a is b

    def test_analytics_cached_and_readonly(self):
        g = ripple_carry(8)
        assert g.levels() is g.levels()
        assert g.fanouts() is g.fanouts()
        assert g.minlist() is g.minlist()
        assert g.upper_parent_map() is g.upper_parent_map()
        for arr in (g.levels(), g.fanouts(), g.minlist(), g.upper_parent_map()):
            with pytest.raises(ValueError):
                arr[0, 0] = 1

    def test_feature_and_mask_memo(self):
        from repro.env import ActionSpace, graph_features

        g = sklansky(8)
        assert graph_features(g) is graph_features(g)
        space = ActionSpace(8)
        assert space.legal_mask(g) is space.legal_mask(g)
        # Distinct instances of an equal graph memoize independently.
        g2 = PrefixGraph(np.array(g.grid))
        assert graph_features(g2) is not graph_features(g)
        assert np.array_equal(graph_features(g2), graph_features(g))
