"""Array-backed static timing engine with incremental re-analysis.

:class:`TimingGraph` compiles a :class:`repro.netlist.Netlist` once and
then keeps the analysis *live* across netlist edits:

- **Compile** builds topo-ordered arc tables (source net, intrinsic delay
  per arc; load per net) and runs the forward arrival pass as
  level-grouped numpy sweeps — one vectorized gather/max per logic level
  instead of a Python visit per instance.
- **Incremental re-analysis**: every optimizer move class (cell resize,
  pin swap, sink rewire, instance insertion/removal) is mirrored by a
  mutation method that updates the affected loads/arcs and re-propagates
  arrivals only through the downstream cone, using a rank-ordered
  worklist. An accept/reject trial therefore costs O(affected cone), not
  O(netlist). The worklist state is kept in Python-native structures
  (lists of ``(src, intrinsic)`` arc tuples) because the cone loop is
  scalar by nature — per-element numpy access would dominate it.
- **Backward required times** are maintained incrementally, mirroring
  the forward worklist: the first slack query pays one full rank-ordered
  reverse sweep, after which every mutation marks only the nets whose
  required time can actually change (the fan-in cone of the edit) and a
  rank-descending worklist repairs them on the next query. A slack query
  after an optimizer move therefore costs O(affected cone), not
  O(netlist). Passes that only compare delays never pay for required
  times at all (the backward state stays lazily uninitialized).

The engine is **bit-identical** to the reference implementation preserved
in :mod:`repro.sta.reference`: identical load summation order, identical
arc-delay expression grouping (``intrinsic + resistance * load`` first,
then add the source arrival), identical first-wins tie-breaks for worst
arcs and worst outputs. ``tests/sta/test_timing_graph.py`` property-tests
full and incremental analysis against the oracle on randomized adder
netlists and randomized move sequences.

Contract: a ``TimingGraph`` *binds* its netlist — all edits must go
through the graph's mutation methods so analysis state and netlist stay
in sync (editing the bound netlist directly leaves the analysis stale).
Use :meth:`fork` to branch an analysis (own netlist clone, own state),
e.g. one branch per delay target from a single compile.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.cells.library import CELL_FUNCTIONS, Cell
from repro.netlist.ir import Instance, Netlist
from repro.sta.timing import TimingReport, net_load

_INF = float("inf")

MAX_ARCS = max(len(f.inputs) for f in CELL_FUNCTIONS.values())
"""Widest cell input count; compile-time arc tables pad to this width."""


class TimingGraph:
    """Incrementally maintained STA over one (mutable) netlist.

    Args:
        netlist: the design to analyze. The graph binds it: use the
            graph's mutation methods for edits.
        target: required time at every primary output (None = report
            arrivals only; ``wns`` is +inf).
        input_arrivals: per-primary-input arrival overrides (default 0.0).
    """

    def __init__(
        self,
        netlist: Netlist,
        target: "float | None" = None,
        input_arrivals: "dict[str, float] | None" = None,
    ):
        self.nl = netlist
        self.target = target
        if input_arrivals:
            unknown = set(input_arrivals) - set(netlist.inputs)
            if unknown:
                raise ValueError(f"input_arrivals for non-input nets: {sorted(unknown)}")
        self._input_arrivals = dict(input_arrivals or {})
        self._pending: "set[int]" = set()
        self._required: "list[float] | None" = None
        # Net indices whose required time may be stale. Only meaningful
        # while ``_required`` is a cached list; empty means the cache is
        # exact for every live net.
        self._req_pending: "set[int]" = set()
        self._compile()

    # ------------------------------------------------------------------
    # Compile: netlist -> arc tables + one full forward pass
    # ------------------------------------------------------------------

    def _compile(self) -> None:
        nl = self.nl
        order = nl.topological_order()

        # Net table. Index order: primary inputs, then instance outputs in
        # topological order.
        self._net_index: "dict[str, int]" = {}
        self._net_names: "list[str | None]" = []
        for net in nl.inputs:
            self._net_index[net] = len(self._net_names)
            self._net_names.append(net)
        num_inputs = len(self._net_names)
        for name in order:
            out = nl.instances[name].output_net
            self._net_index[out] = len(self._net_names)
            self._net_names.append(out)
        num_n = len(self._net_names)

        self._net_alive: "list[bool]" = [True] * num_n
        self._net_driver: "list[int]" = [-1] * num_n
        self._net_load: "list[float]" = [0.0] * num_n
        self._net_arrival: "list[float]" = [0.0] * num_n
        self._net_wsrc: "list[int]" = [-1] * num_n
        self._net_sinks: "list[set[int]]" = [set() for _ in range(num_n)]
        for net, val in self._input_arrivals.items():
            self._net_arrival[self._net_index[net]] = float(val)
        self._out_nets: "list[int]" = [self._net_index[n] for n in nl.outputs]
        self._out_set: "frozenset[int]" = frozenset(self._out_nets)

        # Instance table: per-instance arc tuples (source net, intrinsic),
        # output resistance, output net, topological rank.
        self._inst_index: "dict[str, int]" = {}
        self._inst_names: "list[str | None]" = []
        self._alive: "list[bool]" = []
        self._out_net: "list[int]" = []
        self._rank: "list[float]" = []
        self._res: "list[float]" = []
        self._arcs: "list[list[tuple[int, float]]]" = []
        levels: "list[int]" = []
        for pos, name in enumerate(order):
            inst = nl.instances[name]
            cell = inst.cell
            self._inst_index[name] = pos
            self._inst_names.append(name)
            self._alive.append(True)
            out_idx = self._net_index[inst.output_net]
            self._out_net.append(out_idx)
            self._net_driver[out_idx] = pos
            self._rank.append(float(pos))
            self._res.append(cell.resistance)
            arcs = []
            lvl = 0
            for pin in cell.input_pins:
                src = self._net_index[inst.pins[pin]]
                arcs.append((src, cell.intrinsics[pin]))
                self._net_sinks[src].add(pos)
                drv = self._net_driver[src]
                if drv >= 0:
                    lvl = max(lvl, levels[drv] + 1)
            self._arcs.append(arcs)
            levels.append(lvl)
            self._net_load[out_idx] = net_load(nl, inst.output_net)

        self._forward_sweeps(levels, num_inputs)

    def _forward_sweeps(self, levels: "list[int]", num_inputs: int) -> None:
        """Full forward arrival pass as one array sweep per logic level."""
        num_i = len(self._arcs)
        if num_i == 0:
            return
        # Pack the python-native tables into padded numpy arc tables once.
        arc_src = np.zeros((num_i, MAX_ARCS), dtype=np.int64)
        arc_intr = np.zeros((num_i, MAX_ARCS), dtype=np.float64)
        valid = np.zeros((num_i, MAX_ARCS), dtype=bool)
        for i, arcs in enumerate(self._arcs):
            for p, (src, intr) in enumerate(arcs):
                arc_src[i, p] = src
                arc_intr[i, p] = intr
                valid[i, p] = True
        res = np.asarray(self._res)
        out_net = np.asarray(self._out_net, dtype=np.int64)
        load = np.asarray(self._net_load)
        arrival = np.asarray(self._net_arrival)
        wsrc = np.asarray(self._net_wsrc, dtype=np.int64)
        lvl_arr = np.asarray(levels, dtype=np.int64)

        by_level = np.argsort(lvl_arr, kind="stable")
        bounds = np.searchsorted(lvl_arr[by_level], np.arange(lvl_arr.max() + 2))
        for lvl in range(len(bounds) - 1):
            idx = by_level[bounds[lvl] : bounds[lvl + 1]]
            if idx.size == 0:
                continue
            src = arc_src[idx]
            ok = valid[idx]
            d = arc_intr[idx] + res[idx, None] * load[out_net[idx], None]
            t = np.where(ok, arrival[src] + d, -np.inf)
            best = t.max(axis=1)
            wa = t.argmax(axis=1)
            worst = np.take_along_axis(src, wa[:, None], axis=1)[:, 0]
            out = out_net[idx]
            arrival[out] = np.maximum(best, -1.0)
            wsrc[out] = np.where(best > -1.0, worst, -1)

        self._net_arrival = arrival.tolist()
        self._net_wsrc = wsrc.tolist()

    # ------------------------------------------------------------------
    # Dirty tracking / incremental propagation
    # ------------------------------------------------------------------

    def _touch(self, i: int) -> None:
        """Mark instance ``i`` re-timeable: forward (its cone) and backward.

        A touched instance has changed arc delays (resistance, intrinsic,
        or output load), so besides re-propagating arrivals downstream,
        the required times of its *arc-source* nets are stale — each is
        ``min`` over sink candidates ``req[sink_out] - arc_delay`` and one
        of those arc delays just moved. ``req`` of the instance's own
        output net only depends on *downstream* arc delays, so it stays
        exact and the backward repair naturally walks fan-in from here.
        """
        self._pending.add(i)
        if self._required is not None:
            pend = self._req_pending
            for s, _ in self._arcs[i]:
                pend.add(s)

    def _update_load(self, net_idx: int) -> None:
        """Recompute one net's load exactly as :func:`net_load` does."""
        new = net_load(self.nl, self._net_names[net_idx])
        if new != self._net_load[net_idx]:
            self._net_load[net_idx] = new
            drv = self._net_driver[net_idx]
            if drv >= 0:
                self._touch(drv)

    def _flush(self) -> None:
        """Re-propagate arrivals through the dirty downstream cone.

        Instances are processed in ascending topological rank, so each one
        is recomputed at most once per flush, from settled fanin values —
        the unique fixpoint the full pass would reach.
        """
        if not self._pending:
            return
        rank = self._rank
        heap = [(rank[i], i) for i in self._pending]
        heapq.heapify(heap)
        queued = set(self._pending)
        self._pending.clear()
        arrival = self._net_arrival
        arcs_tab = self._arcs
        alive = self._alive
        loads = self._net_load
        res_tab = self._res
        out_tab = self._out_net
        wsrc_tab = self._net_wsrc
        sinks_tab = self._net_sinks
        pop = heapq.heappop
        push = heapq.heappush
        while heap:
            i = pop(heap)[1]
            queued.discard(i)
            if not alive[i]:
                continue
            out = out_tab[i]
            rl = res_tab[i] * loads[out]
            best = -1.0
            bsrc = -1
            for s, intr in arcs_tab[i]:
                t = arrival[s] + (intr + rl)
                if t > best:
                    best = t
                    bsrc = s
            changed = best != arrival[out]
            arrival[out] = best
            wsrc_tab[out] = bsrc
            if changed:
                for j in sinks_tab[out]:
                    if j not in queued:
                        queued.add(j)
                        push(heap, (rank[j], j))

    def _rerank(self) -> None:
        """Recompute topological ranks from scratch (rare structural repair).

        Must run *before* the next flush — pending work is propagated in
        rank order, so ranks are repaired eagerly the moment an edit
        violates them, never after a propagation used them.
        """
        for pos, name in enumerate(self.nl.topological_order()):
            self._rank[self._inst_index[name]] = float(pos)

    # ------------------------------------------------------------------
    # Mutations (mirror the Netlist API; keep analysis state in sync)
    # ------------------------------------------------------------------

    def replace_cell(self, name: str, new_cell: Cell) -> None:
        """Resize an instance; re-times its fanin drivers and its cone."""
        self.nl.replace_cell(name, new_cell)
        i = self._inst_index[name]
        inst = self.nl.instances[name]
        self._res[i] = new_cell.resistance
        arcs = self._arcs[i]
        for p, pin in enumerate(new_cell.input_pins):
            arcs[p] = (arcs[p][0], new_cell.intrinsics[pin])
            self._update_load(self._net_index[inst.pins[pin]])
        self._touch(i)

    def swap_pins(self, name: str, pin_a: str, pin_b: str) -> None:
        """Exchange two commutative input pins; re-times both nets' cones."""
        self.nl.swap_pins(name, pin_a, pin_b)
        i = self._inst_index[name]
        inst = self.nl.instances[name]
        cell = inst.cell
        self._arcs[i] = [
            (self._net_index[inst.pins[pin]], cell.intrinsics[pin])
            for pin in cell.input_pins
        ]
        self._update_load(self._net_index[inst.pins[pin_a]])
        self._update_load(self._net_index[inst.pins[pin_b]])
        self._touch(i)

    def add_instance(self, cell: Cell, pins: "dict[str, str]", name: "str | None" = None) -> Instance:
        """Instantiate a cell (fresh output net) and time it in place."""
        inst = self.nl.add_instance(cell, pins, name)
        i = len(self._inst_names)
        self._inst_index[inst.name] = i
        self._inst_names.append(inst.name)
        self._alive.append(True)
        out_idx = self._net_index.get(inst.output_net)
        if out_idx is None:
            out_idx = len(self._net_names)
            self._net_index[inst.output_net] = out_idx
            self._net_names.append(inst.output_net)
            self._net_alive.append(True)
            self._net_driver.append(-1)
            self._net_load.append(0.0)
            self._net_arrival.append(0.0)
            self._net_wsrc.append(-1)
            self._net_sinks.append(set())
            if self._required is not None:
                # Fresh net, no sinks yet: unconstrained until a later
                # rewire gives it fanout (which marks it stale).
                self._required.append(_INF)
        self._out_net.append(out_idx)
        self._net_driver[out_idx] = i
        self._res.append(cell.resistance)
        arcs = []
        max_fanin_rank = -1.0
        for pin in cell.input_pins:
            src = self._net_index[inst.pins[pin]]
            arcs.append((src, cell.intrinsics[pin]))
            self._net_sinks[src].add(i)
            drv = self._net_driver[src]
            if drv >= 0 and self._rank[drv] > max_fanin_rank:
                max_fanin_rank = self._rank[drv]
        self._arcs.append(arcs)
        # Half-step rank: above every fanin, below the integer-ranked rest.
        # rewire_sink() repairs via _rerank() if a later edit violates it.
        self._rank.append(max_fanin_rank + 0.5)
        for src, _ in arcs:
            self._update_load(src)
        self._update_load(out_idx)
        self._touch(i)
        return inst

    def remove_instance(self, name: str) -> None:
        """Delete an instance whose output net has no sinks."""
        inst = self.nl.instances[name]
        self.nl.remove_instance(name)
        i = self._inst_index.pop(name)
        self._inst_names[i] = None
        self._alive[i] = False
        self._pending.discard(i)
        out_idx = self._net_index.pop(inst.output_net)
        self._net_alive[out_idx] = False
        self._net_driver[out_idx] = -1
        self._net_names[out_idx] = None
        for src in {s for s, _ in self._arcs[i]}:
            self._net_sinks[src].discard(i)
            self._update_load(src)
            if self._required is not None:
                # Each source net lost a sink candidate from its min.
                self._req_pending.add(src)
        self._arcs[i] = []
        self._req_pending.discard(out_idx)

    def rewire_sink(self, inst_name: str, pin: str, new_net: str) -> None:
        """Move one input pin to a different net; re-times both cones."""
        inst = self.nl.instances[inst_name]
        old_net = inst.pins[pin]
        self.nl.rewire_sink(inst_name, pin, new_net)
        i = self._inst_index[inst_name]
        p = inst.cell.input_pins.index(pin)
        old_idx = self._net_index[old_net]
        new_idx = self._net_index[new_net]
        self._arcs[i][p] = (new_idx, self._arcs[i][p][1])
        if all(src != old_idx for src, _ in self._arcs[i]):
            self._net_sinks[old_idx].discard(i)
        self._net_sinks[new_idx].add(i)
        self._update_load(old_idx)
        self._update_load(new_idx)
        self._touch(i)
        if self._required is not None:
            # The old net lost a sink candidate (the new one gained a
            # candidate; _touch marked it via the updated arc table).
            self._req_pending.add(old_idx)
        drv = self._net_driver[new_idx]
        if drv >= 0 and self._rank[drv] >= self._rank[i]:
            self._rerank()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _worst_output(self) -> int:
        """Net index of the worst (first-wins) primary output, or -1."""
        best = -_INF
        worst = -1
        arrival = self._net_arrival
        for o in self._out_nets:
            a = arrival[o]
            if a > best:
                best = a
                worst = o
        return worst

    @property
    def delay(self) -> float:
        """Worst arrival over primary outputs (0.0 with no outputs)."""
        self._flush()
        worst = self._worst_output()
        if worst < 0:
            return 0.0
        return self._net_arrival[worst]

    @property
    def wns(self) -> float:
        """``target - delay`` (+inf when unconstrained)."""
        if self.target is None:
            return _INF
        return self.target - self.delay

    def critical_path(self) -> "list[str]":
        """Instance names from the path's first gate to the worst output's driver."""
        self._flush()
        path: "list[str]" = []
        net = self._worst_output()
        while net >= 0 and self._net_driver[net] >= 0:
            path.append(self._inst_names[self._net_driver[net]])
            net = self._net_wsrc[net]
        path.reverse()
        return path

    def arrival_of(self, net: str) -> float:
        """Arrival time of one net."""
        self._flush()
        return self._net_arrival[self._net_index[net]]

    def load_of(self, net: str) -> float:
        """Capacitive load of one net (same value as :func:`net_load`)."""
        return self._net_load[self._net_index[net]]

    def _flush_required(self) -> None:
        """Repair required times over the marked fan-in cone.

        The reverse mirror of :meth:`_flush`: stale nets are processed in
        *descending driver rank* (primary inputs last), so every sink
        instance's output net is settled before the net feeding it is
        recomputed. Each recompute rebuilds the net's required time from
        scratch — ``target`` at primary outputs, ``min`` over all sink
        arc candidates ``req[sink_out] - (intrinsic + res * load)`` —
        the exact per-arc expression of the full reverse sweep, so the
        repaired values are bit-identical to a cold recompute.
        """
        req = self._required
        rank = self._rank
        driver = self._net_driver
        out_set = self._out_set
        target = self.target
        alive_net = self._net_alive
        sinks_tab = self._net_sinks
        out_tab = self._out_net
        arcs_tab = self._arcs
        res_tab = self._res
        loads = self._net_load
        pop = heapq.heappop
        push = heapq.heappush

        def key(s: int) -> float:
            d = driver[s]
            # Driverless (primary-input) nets feed nothing backward;
            # order them after every driven net.
            return -rank[d] if d >= 0 else 1.0

        heap = [(key(s), s) for s in self._req_pending]
        heapq.heapify(heap)
        queued = set(self._req_pending)
        self._req_pending.clear()
        while heap:
            s = pop(heap)[1]
            queued.discard(s)
            if not alive_net[s]:
                continue
            r = target if s in out_set else _INF
            for j in sinks_tab[s]:
                out = out_tab[j]
                rj = req[out]
                if rj == _INF:
                    continue
                rl = res_tab[j] * loads[out]
                for src, intr in arcs_tab[j]:
                    if src != s:
                        continue
                    cand = rj - (intr + rl)
                    if cand < r:
                        r = cand
            if r != req[s]:
                req[s] = r
                d = driver[s]
                if d >= 0:
                    for src in {a for a, _ in arcs_tab[d]}:
                        if src not in queued:
                            queued.add(src)
                            push(heap, (key(src), src))

    def _ensure_required(self) -> "list[float]":
        """Required times for every live net (incrementally maintained).

        The first query pays one full rank-descending sweep: every sink
        of a net has a higher rank than its driver, so each net's
        required time is final before any of its fanin arcs subtract
        from it — the same min-fixpoint the reference reversed-
        topological traversal reaches. Later queries only repair the
        nets mutations marked stale (:meth:`_flush_required`).
        """
        self._flush()
        if self._required is not None:
            if self._req_pending:
                self._flush_required()
            return self._required
        if self.target is None:
            raise ValueError("analysis ran without a target; no slacks available")
        req = [_INF] * len(self._net_names)
        for o in self._out_nets:
            req[o] = self.target
        live = [i for i, a in enumerate(self._alive) if a]
        live.sort(key=self._rank.__getitem__, reverse=True)
        loads = self._net_load
        for i in live:
            out = self._out_net[i]
            r = req[out]
            if r == _INF:
                continue
            rl = self._res[i] * loads[out]
            for s, intr in self._arcs[i]:
                cand = r - (intr + rl)
                if cand < req[s]:
                    req[s] = cand
        self._req_pending.clear()
        self._required = req
        return req

    def slack_of(self, net: str) -> float:
        """``required - arrival`` of one net (+inf off the constrained cone)."""
        req = self._ensure_required()
        idx = self._net_index[net]
        return req[idx] - self._net_arrival[idx]

    def slack_map(self) -> "dict[str, float]":
        """Slack of every live net (one backward pass, one dict build)."""
        req = self._ensure_required()
        names = self._net_names
        arrival = self._net_arrival
        return {
            names[i]: req[i] - arrival[i]
            for i, ok in enumerate(self._net_alive)
            if ok
        }

    def slack_all(self) -> "dict[str, float]":
        """Alias of :meth:`slack_map` (the name used by the optimizer API)."""
        return self.slack_map()

    def downsize_rejected(self, name: str, new_cell: Cell, margin: float = 1e-9) -> bool:
        """Prove that resizing ``name`` to ``new_cell`` must leave ``wns < 0``.

        Used by slack-pruned area recovery: in met mode a downsize trial
        is accepted only if ``wns >= 0`` afterwards, and a rejected trial
        reverts exactly, so skipping a *provably* rejected trial changes
        nothing observable. The proof is local and conservative:

        - The required time at the instance's output net is invariant
          under the trial (it depends only on downstream arc delays,
          which a resize of this instance never touches).
        - The trial's new output arrival is bounded below by the engine's
          own per-arc expression over current input arrivals, minus the
          largest possible upstream improvement: shrinking input-pin caps
          lowers the input nets' loads, which shortens any single path by
          at most the summed ``driver_resistance * cap_drop``.

        If even that lower bound exceeds the required time by more than
        ``margin`` — orders of magnitude above float path-sum noise,
        orders of magnitude below any real timing margin — some output
        must miss the target. Returns ``False`` whenever the proof does
        not apply, so a would-be acceptance is never pruned.
        """
        req = self._ensure_required()
        i = self._inst_index[name]
        out = self._out_net[i]
        r_out = req[out]
        if r_out == _INF:
            return False
        inst = self.nl.instances[name]
        old_cell = inst.cell
        arrival = self._net_arrival
        driver = self._net_driver
        net_index = self._net_index
        rl = new_cell.resistance * self._net_load[out]
        best = -_INF
        drop = 0.0
        seen: "set[int]" = set()
        for pin in new_cell.input_pins:
            s = net_index[inst.pins[pin]]
            t = arrival[s] + (new_cell.intrinsics[pin] + rl)
            if t > best:
                best = t
            if s in seen:
                continue
            seen.add(s)
            d = driver[s]
            if d < 0:
                continue
            dcap = 0.0
            for q in old_cell.input_pins:
                if net_index[inst.pins[q]] == s:
                    dcap += old_cell.input_caps[q] - new_cell.input_caps[q]
            if dcap > 0.0:
                drop += self._res[d] * dcap
        return best - drop - r_out > margin

    def report(self) -> TimingReport:
        """Export the full dict-based :class:`TimingReport` (oracle format)."""
        self._flush()
        names = self._net_names
        arrival = {
            names[i]: self._net_arrival[i]
            for i, ok in enumerate(self._net_alive)
            if ok
        }
        required: "dict[str, float]" = {}
        slack: "dict[str, float]" = {}
        wns = _INF
        if self.target is not None:
            req = self._ensure_required()
            for i, ok in enumerate(self._net_alive):
                if not ok:
                    continue
                if req[i] != _INF:
                    required[names[i]] = req[i]
                slack[names[i]] = req[i] - self._net_arrival[i]
            wns = self.target - self.delay
        return TimingReport(
            delay=self.delay,
            target=self.target,
            wns=wns,
            arrival=arrival,
            required=required,
            slack=slack,
            critical_path=self.critical_path(),
            area=self.nl.area(),
        )

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------

    def fork(self, target: "float | None" = None) -> "TimingGraph":
        """Independent copy (own netlist clone, own state), optionally retargeted.

        The compiled state is reused — forking costs shallow copies, not a
        recompile — which is what lets :func:`repro.synth.synthesize_curve`
        compile once and branch per delay target.
        """
        self._flush()
        other = object.__new__(TimingGraph)
        other.nl = self.nl.clone()
        other.target = self.target if target is None else target
        other._input_arrivals = dict(self._input_arrivals)
        other._pending = set()
        if other.target == self.target and self._required is not None:
            # Same target: the backward cache (and its dirty set) stays
            # valid in the branch.
            other._required = list(self._required)
            other._req_pending = set(self._req_pending)
        else:
            other._required = None
            other._req_pending = set()
        other._inst_index = dict(self._inst_index)
        other._inst_names = list(self._inst_names)
        other._alive = list(self._alive)
        other._out_net = list(self._out_net)
        other._rank = list(self._rank)
        other._res = list(self._res)
        other._arcs = [list(a) for a in self._arcs]
        other._net_index = dict(self._net_index)
        other._net_names = list(self._net_names)
        other._net_alive = list(self._net_alive)
        other._net_driver = list(self._net_driver)
        other._net_load = list(self._net_load)
        other._net_arrival = list(self._net_arrival)
        other._net_wsrc = list(self._net_wsrc)
        other._net_sinks = [set(s) for s in self._net_sinks]
        other._out_nets = list(self._out_nets)
        other._out_set = self._out_set
        return other

    def __repr__(self) -> str:
        return (
            f"TimingGraph({self.nl.name!r}, insts={len(self._inst_index)}, "
            f"nets={len(self._net_index)}, target={self.target})"
        )
