"""Cross-layer ML optimization (Ma et al., ref. [10]).

The CL baseline of Fig. 4b "proposes an alternative set of pruning
heuristics that result in a larger set of pruned adders which are then
searched using a machine learning model that is trained to predict physical
metrics". Reproduced as a three-stage pipeline:

1. **Candidate generation** — a pruned enumeration with looser rules than
   PS (larger level slack and fanout cap), producing a big candidate pool
   cheaply.
2. **Predictor training** — ridge regression (closed form on numpy) from
   structural graph features to synthesized area/delay, fitted on a small
   synthesized sample of the pool.
3. **Predicted-Pareto selection** — the predictor scores the whole pool;
   the predicted-frontier designs (plus the training sample) are actually
   synthesized, and those measurements form the CL series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.ps import PruningRules, pruned_search
from repro.pareto.front import ParetoArchive, pareto_front
from repro.prefix.graph import PrefixGraph
from repro.utils.rng import ensure_rng


def graph_feature_vector(graph: PrefixGraph) -> np.ndarray:
    """Structural features a physical-metric predictor can learn from.

    Size, depth, fanout statistics and level-occupancy moments — the
    cross-layer features [10] uses (their wirelength proxies are replaced
    by fanout moments, which play the same congestion-proxy role here).
    """
    levels = graph.levels()
    fanouts = graph.fanouts()
    present = graph.grid
    fo = fanouts[present].astype(np.float64)
    lv = levels[present].astype(np.float64)
    n = float(graph.n)
    return np.array(
        [
            1.0,
            graph.num_compute_nodes / n,
            graph.depth() / n,
            graph.max_fanout() / n,
            float(fo.mean()),
            float((fo**2).mean()),
            float(lv.mean()) / n,
            float((lv**2).mean()) / (n * n),
            float((fo * lv).mean()) / n,
        ]
    )


class RidgePredictor:
    """Closed-form ridge regression onto (area, delay)."""

    def __init__(self, alpha: float = 1e-3):
        self.alpha = alpha
        self._weights: "np.ndarray | None" = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> None:
        """Fit W minimizing ||XW - Y||^2 + alpha ||W||^2."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        gram = x.T @ x + self.alpha * np.eye(x.shape[1])
        self._weights = np.linalg.solve(gram, x.T @ y)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted (area, delay) rows for feature rows."""
        if self._weights is None:
            raise RuntimeError("predictor not fitted")
        return np.asarray(features, dtype=np.float64) @ self._weights

    def r_squared(self, features: np.ndarray, targets: np.ndarray) -> float:
        """Coefficient of determination, averaged over output columns."""
        pred = self.predict(features)
        y = np.asarray(targets, dtype=np.float64)
        ss_res = ((y - pred) ** 2).sum(axis=0)
        ss_tot = ((y - y.mean(axis=0)) ** 2).sum(axis=0) + 1e-12
        return float((1.0 - ss_res / ss_tot).mean())


@dataclass
class CrossLayerResult:
    """Outcome of the CL pipeline."""

    archive: ParetoArchive
    candidates: int
    synthesized: int
    predictor_r2: float


def cross_layer_optimization(
    n: int,
    evaluator,
    sample_size: int = 24,
    select_size: int = 24,
    max_candidates: int = 400,
    rules: "PruningRules | None" = None,
    rng=None,
) -> CrossLayerResult:
    """Run the CL pipeline against ``evaluator`` (a synthesis evaluator).

    ``evaluator.evaluate`` is the expensive oracle; the predictor rations
    it: ``sample_size`` training calls plus ``select_size`` verification
    calls of the predicted frontier.
    """
    gen = ensure_rng(rng)
    if rules is None:
        rules = PruningRules(level_slack=3, max_fanout=8, size_slack=3.0)

    class _FreeEvaluator:
        """Zero-cost stand-in so enumeration doesn't touch synthesis."""

        c_area = 1.0
        c_delay = 1.0

        def evaluate(self, graph):
            from repro.synth.evaluator import CircuitMetrics

            return CircuitMetrics(area=0.0, delay=0.0)

        def scalarize(self, metrics):
            return 0.0

    pool = pruned_search(
        n, _FreeEvaluator(), rules=rules, max_designs=max_candidates
    ).designs
    features = np.stack([graph_feature_vector(g) for g in pool])

    sample_size = min(sample_size, len(pool))
    sample_idx = gen.choice(len(pool), size=sample_size, replace=False)
    archive = ParetoArchive()
    targets = []
    for i in sample_idx:
        metrics = evaluator.evaluate(pool[i])
        archive.add(metrics.area, metrics.delay, payload=pool[i])
        targets.append([metrics.area, metrics.delay])
    predictor = RidgePredictor()
    predictor.fit(features[sample_idx], np.array(targets))
    r2 = predictor.r_squared(features[sample_idx], np.array(targets))

    predictions = predictor.predict(features)
    predicted_points = [(float(a), float(d)) for a, d in predictions]
    frontier_set = set(pareto_front(predicted_points))
    ranked = [i for i, p in enumerate(predicted_points) if p in frontier_set]
    ranked += [i for i in np.argsort(predictions @ np.array([0.5, 0.5])) if i not in set(ranked)]

    synthesized = 0
    sampled = set(int(i) for i in sample_idx)
    for i in ranked:
        if synthesized >= select_size:
            break
        if int(i) in sampled:
            continue
        metrics = evaluator.evaluate(pool[int(i)])
        archive.add(metrics.area, metrics.delay, payload=pool[int(i)])
        synthesized += 1

    return CrossLayerResult(
        archive=archive,
        candidates=len(pool),
        synthesized=synthesized + sample_size,
        predictor_r2=r2,
    )
