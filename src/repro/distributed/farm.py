"""Parallel synthesis across worker processes.

Graphs are serialized to JSON, workers rebuild the library/synthesizer from
registry names (cell libraries are code, not data, so only names cross the
process boundary), and curves come back as plain sample points.

The farm's dispatch layer does three things the naive serial baseline does
not — they are what the paper's 192-worker farm needs to survive its
synthesis budget (Sections IV-D / V-C), and what the Section V-C benchmark
measures:

- **digest-level dedup**: a batch's duplicate graphs are synthesized once
  (RL batches repeat states constantly — that is why the paper caches);
- **cache-aware routing**: with a :class:`repro.synth.SynthesisCache`
  attached, only cache misses cross the process boundary and results are
  written back, so repeat batches cost nothing;
- **chunked submission with a warm, reusable pool**: tasks ship in
  ``num_workers`` chunks (one IPC round trip per worker, not per task) to a
  pool that is spawned and warmed once and reused across batches.

``num_workers=0`` runs the plain per-graph serial loop with no dispatch
layer — the un-optimized reference the speedup is measured against.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.prefix.graph import PrefixGraph
from repro.prefix.serialize import graph_digest, graph_from_json, graph_to_json
from repro.synth.cache import SynthesisCache
from repro.synth.curve import AreaDelayCurve, synthesize_curve
from repro.synth.optimizer import Synthesizer

_LIBRARIES = {}


def _library(name: str):
    """Build (and memoize per process) a cell library by registry name."""
    if name not in _LIBRARIES:
        from repro.cells import industrial8nm, nangate45

        registry = {"nangate45": nangate45, "industrial8nm": industrial8nm}
        if name not in registry:
            raise KeyError(f"unknown library {name!r}")
        _LIBRARIES[name] = registry[name]()
    return _LIBRARIES[name]


def _synthesize_task(graph_json: str, library_name: str, synth_kwargs: dict):
    """Worker-side task: one full curve synthesis; returns sample points."""
    graph = graph_from_json(graph_json)
    library = _library(library_name)
    synthesizer = Synthesizer(**synth_kwargs)
    curve = synthesize_curve(graph, library, synthesizer)
    return list(zip(curve.delays.tolist(), curve.areas.tolist()))


def _synthesize_chunk(graph_jsons: "list[str]", library_name: str, synth_kwargs: dict):
    """Worker-side task: synthesize a whole chunk in one IPC round trip."""
    return [_synthesize_task(p, library_name, synth_kwargs) for p in graph_jsons]


def _warm_worker(library_name: str) -> bool:
    """Force worker start-up costs (imports, library build) off the clock."""
    _library(library_name)
    return True


@dataclass
class FarmStats:
    """Throughput and dispatch-accounting record of one batch evaluation."""

    num_graphs: int
    wall_seconds: float
    mode: str
    unique_graphs: int = 0
    cache_hits: int = 0
    dispatched: int = 0
    chunks: int = 0

    @property
    def graphs_per_second(self) -> float:
        return self.num_graphs / self.wall_seconds if self.wall_seconds > 0 else 0.0


class SynthesisFarm:
    """Evaluate batches of graphs with a process pool (or serially).

    Args:
        library_name: registry name (``nangate45`` / ``industrial8nm``).
        num_workers: pool size; 0 means the naive serial in-process loop
            (no dedup, no cache routing) used as the speedup reference.
        synth_kwargs: :class:`repro.synth.Synthesizer` overrides shipped to
            workers (must be picklable).
        cache: optional shared :class:`SynthesisCache`; hits are served
            locally and results written back. Pass one cache to several
            farms (or batches) to share synthesis work between them.
        chunk_size: graphs per worker submission; default splits each
            batch's misses evenly across the pool.

    The pool is created lazily on first pooled evaluation (or eagerly by
    ``with farm: ...``) and reused until :meth:`close`.
    """

    def __init__(
        self,
        library_name: str = "nangate45",
        num_workers: int = 4,
        synth_kwargs: "dict | None" = None,
        cache: "SynthesisCache | None" = None,
        chunk_size: "int | None" = None,
    ):
        if num_workers < 0:
            raise ValueError("num_workers must be >= 0")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.library_name = library_name
        self.num_workers = num_workers
        self.synth_kwargs = dict(synth_kwargs or {})
        self.cache = cache
        self.chunk_size = chunk_size
        self._pool: "ProcessPoolExecutor | None" = None
        self.last_stats: "FarmStats | None" = None
        # Cumulative dispatch accounting across all batches (see stats()).
        self.total_batches = 0
        self.total_graphs = 0
        self.total_unique = 0
        self.total_cache_hits = 0
        self.total_dispatched = 0

    def __enter__(self) -> "SynthesisFarm":
        self._ensure_pool()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _ensure_pool(self) -> None:
        """Create and warm the worker pool (one-time; reused across batches)."""
        if self.num_workers > 0 and self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.num_workers)
            warmups = [
                self._pool.submit(_warm_worker, self.library_name)
                for _ in range(self.num_workers)
            ]
            for f in warmups:
                try:
                    f.result()
                except KeyError:
                    # Unknown library: surface lazily with the evaluation
                    # call (matching serial-mode behavior), not at pool spin-up.
                    break

    def close(self) -> None:
        """Shut the pool down."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _cache_key(self, graph: PrefixGraph) -> tuple:
        # Same key layout as SynthesisEvaluator.curve, so one cache can be
        # shared between a farm and in-process evaluators.
        synth_name = self.synth_kwargs.get("name", "openphysyn")
        return (graph_digest(graph), self.library_name, synth_name)

    def evaluate_curves(self, graphs: "list[PrefixGraph]") -> "list[AreaDelayCurve]":
        """Synthesize every graph's curve; order matches the input.

        Serial mode evaluates each graph in turn. Pool mode dedups by
        digest, serves cache hits locally, and ships only the unique misses
        to the workers in per-worker chunks.
        """
        start = time.perf_counter()
        if self.num_workers == 0:
            points = [
                _synthesize_task(graph_to_json(g), self.library_name, self.synth_kwargs)
                for g in graphs
            ]
            curves = [AreaDelayCurve(pts) for pts in points]
            self.last_stats = FarmStats(
                num_graphs=len(graphs),
                wall_seconds=time.perf_counter() - start,
                mode="serial",
                unique_graphs=len(graphs),
                dispatched=len(graphs),
            )
            self._account(self.last_stats)
            return curves

        self._ensure_pool()
        # Dedup by content digest: one synthesis per unique design.
        order: "dict[bytes, int]" = {}
        keys = []
        for g in graphs:
            key = g.key()
            if key not in order:
                order[key] = len(keys)
                keys.append((key, g))
        unique_curves: "list[AreaDelayCurve | None]" = [None] * len(keys)

        # Cache-aware routing: only misses cross the process boundary.
        misses = []
        cache_hits = 0
        if self.cache is not None:
            cached = self.cache.get_many([self._cache_key(g) for _, g in keys])
            for i, value in enumerate(cached):
                if value is not None:
                    unique_curves[i] = value
                    cache_hits += 1
                else:
                    misses.append(i)
        else:
            misses = list(range(len(keys)))

        # Chunked submission: one future per worker-sized slice.
        num_chunks = 0
        if misses:
            chunk = self.chunk_size
            if chunk is None:
                chunk = max(1, -(-len(misses) // self.num_workers))
            chunks = [misses[c : c + chunk] for c in range(0, len(misses), chunk)]
            num_chunks = len(chunks)
            futures = [
                self._pool.submit(
                    _synthesize_chunk,
                    [graph_to_json(keys[i][1]) for i in idxs],
                    self.library_name,
                    self.synth_kwargs,
                )
                for idxs in chunks
            ]
            fresh = []
            for idxs, future in zip(chunks, futures):
                for i, pts in zip(idxs, future.result()):
                    curve = AreaDelayCurve(pts)
                    unique_curves[i] = curve
                    fresh.append((self._cache_key(keys[i][1]), curve))
            if self.cache is not None and fresh:
                self.cache.put_many(fresh)

        curves = [unique_curves[order[g.key()]] for g in graphs]
        self.last_stats = FarmStats(
            num_graphs=len(graphs),
            wall_seconds=time.perf_counter() - start,
            mode=f"pool[{self.num_workers}]",
            unique_graphs=len(keys),
            cache_hits=cache_hits,
            dispatched=len(misses),
            chunks=num_chunks,
        )
        self._account(self.last_stats)
        return curves

    def _account(self, stats: FarmStats) -> None:
        self.total_batches += 1
        self.total_graphs += stats.num_graphs
        self.total_unique += stats.unique_graphs
        self.total_cache_hits += stats.cache_hits
        self.total_dispatched += stats.dispatched

    def stats(self) -> dict:
        """Cumulative dispatch counters plus the shared cache's hit/miss stats.

        ``dedup_saved`` counts graphs that never even reached the cache
        because an identical graph sat in the same batch; the nested
        ``cache`` dict reflects the shared :class:`SynthesisCache` (absent
        when the farm runs cacheless). Consumed by
        :class:`repro.rl.Trainer` telemetry and the scaling benchmarks.
        """
        out = {
            "mode": f"pool[{self.num_workers}]" if self.num_workers else "serial",
            "batches": self.total_batches,
            "graphs": self.total_graphs,
            "unique_graphs": self.total_unique,
            "dedup_saved": self.total_graphs - self.total_unique,
            "cache_hits": self.total_cache_hits,
            "dispatched": self.total_dispatched,
        }
        if self.cache is not None:
            out["cache"] = {
                "entries": len(self.cache),
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "hit_rate": self.cache.hit_rate,
            }
        return out
