"""Table I — per-width scaling statistics.

Paper columns for 16b/32b/64b: |A| (105/465/1953), synthesis time for a
Sklansky adder at 4 timing constraints (11.39s/16.85s/35.56s on their
farm), train iteration time (0.45s/1.61s/3.15s on GPU), residual blocks,
batch size and GPU count. This bench measures the same statistics on this
substrate — |A| must match exactly; times are ours but must reproduce the
monotone growth; the network configuration used at each width is recorded.
"""

import time

import numpy as np

from repro.cells import nangate45
from repro.env import ActionSpace, PrefixEnv
from repro.prefix import sklansky
from repro.rl import ReplayBuffer, ScalarizedDoubleDQN, Transition
from repro.synth import AnalyticalEvaluator, synthesize_curve
from repro.utils import format_table

WIDTHS = (16, 32, 64)
PAPER = {
    16: {"A": 105, "synth": 11.39, "iter": 0.45, "blocks": 16, "batch": 96, "gpus": 1},
    32: {"A": 465, "synth": 16.85, "iter": 1.61, "blocks": 32, "batch": 96, "gpus": 1},
    64: {"A": 1953, "synth": 35.56, "iter": 3.15, "blocks": 32, "batch": 6, "gpus": 14},
}


def measure_width(n, scale):
    """Measure |A|, synthesis time and train-iteration time at width n."""
    space = ActionSpace(n)
    lib = nangate45()

    start = time.perf_counter()
    synthesize_curve(sklansky(n), lib)  # Sklansky at 4 timing constraints
    synth_time = time.perf_counter() - start

    # Train-iteration time: one gradient step at this width's batch size.
    blocks = scale.residual_blocks if n < 64 else scale.residual_blocks
    batch = scale.batch_size if n < 64 else max(scale.batch_size // 4, 2)
    agent = ScalarizedDoubleDQN(n, blocks=blocks, channels=scale.channels, rng=0)
    env = PrefixEnv(n, AnalyticalEvaluator(), horizon=8, rng=0)
    state = env.reset(sklansky(n))
    buffer = ReplayBuffer(64, rng=0)
    gen = np.random.default_rng(0)
    for _ in range(max(batch, 4)):
        obs = env.observe(state)
        mask = env.legal_mask(state)
        idx = int(gen.choice(np.nonzero(mask)[0]))
        res = env.step(env.action_space.action(idx))
        buffer.push(
            Transition(obs, idx, res.reward, env.observe(res.next_state),
                       env.legal_mask(res.next_state), res.done)
        )
        state = res.next_state if not res.done else env.reset()
    sample = buffer.sample(batch)
    agent.train_step(sample)  # warm-up (batchnorm caches, Adam state)
    start = time.perf_counter()
    agent.train_step(sample)
    iter_time = time.perf_counter() - start

    return {
        "n": n,
        "A": space.num_cells,
        "synth": synth_time,
        "iter": iter_time,
        "blocks": blocks,
        "channels": scale.channels,
        "batch": batch,
    }


def run_table(scale):
    return [measure_width(n, scale) for n in WIDTHS]


def test_table1_scaling(benchmark, scale):
    rows = benchmark.pedantic(run_table, args=(scale,), rounds=1, iterations=1)

    print("\n=== Table I: 16b/32b/64b PrefixRL design statistics ===")
    headers = ["Statistic"] + [f"{n}b" for n in WIDTHS]
    body = [
        ["|A| (ours)"] + [r["A"] for r in rows],
        ["|A| (paper)"] + [PAPER[n]["A"] for n in WIDTHS],
        ["Synthesis time ours (s)"] + [f"{r['synth']:.2f}" for r in rows],
        ["Synthesis time paper (s)"] + [PAPER[n]["synth"] for n in WIDTHS],
        ["Train iter ours (s)"] + [f"{r['iter']:.3f}" for r in rows],
        ["Train iter paper (s)"] + [PAPER[n]["iter"] for n in WIDTHS],
        ["Residual blocks (ours)"] + [r["blocks"] for r in rows],
        ["Residual blocks (paper)"] + [PAPER[n]["blocks"] for n in WIDTHS],
        ["Batch size (ours)"] + [r["batch"] for r in rows],
        ["Batch size (paper)"] + [PAPER[n]["batch"] for n in WIDTHS],
    ]
    print(format_table(headers, body))

    # |A| must match the paper exactly — it is a property of the MDP.
    for row, n in zip(rows, WIDTHS):
        assert row["A"] == PAPER[n]["A"]
    # Synthesis and iteration times must grow with width (the scaling
    # pressure Section V-C describes), with slack for timer noise.
    assert rows[0]["synth"] < rows[2]["synth"]
    assert rows[0]["iter"] < rows[2]["iter"] * 1.5
