"""Shared utilities: seeded RNG plumbing, run-scale configuration, ASCII plots.

These helpers keep the rest of the library deterministic (every stochastic
component receives an explicit :class:`numpy.random.Generator`) and free of
ad-hoc environment probing (all scale knobs go through :func:`run_scale`).
"""

from repro.utils.rng import (
    ensure_rng,
    rng_from_state,
    rng_state,
    set_rng_state,
    spawn_rngs,
)
from repro.utils.config import RunScale, run_scale
from repro.utils.ascii_plot import scatter_plot, format_table

__all__ = [
    "ensure_rng",
    "rng_state",
    "set_rng_state",
    "rng_from_state",
    "spawn_rngs",
    "RunScale",
    "run_scale",
    "scatter_plot",
    "format_table",
]
