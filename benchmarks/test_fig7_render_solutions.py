"""Fig. 7 — renderings of learnt Pareto-frontier solutions.

The paper shows four 64b PrefixRL prefix graphs. This bench renders the
large-width sweep's frontier designs as prefix-network diagrams, spanning
the area-delay trade-off from the smallest (ripple-like) to the fastest
(dense, Sklansky/Kogge-Stone-like) end.
"""

from repro.analytical import evaluate_analytical
from repro.prefix import render_network

NUM_RENDERED = 4


def collect_designs(bundle):
    entries = bundle["sweep"].frontier_designs()
    if len(entries) <= NUM_RENDERED:
        return entries
    # Spread picks across the frontier, fastest to smallest.
    step = (len(entries) - 1) / (NUM_RENDERED - 1)
    return [entries[round(i * step)] for i in range(NUM_RENDERED)]


def test_fig7_render_solutions(benchmark, rl_sweep_large):
    designs = benchmark.pedantic(collect_designs, args=(rl_sweep_large,), rounds=1, iterations=1)

    print(f"\n=== Fig. 7: learnt '64b' PrefixRL solutions (n={rl_sweep_large['n']}) ===")
    for area, delay, graph in designs:
        print(f"\n--- design @ synthesized area {area:.1f} um2, delay {delay:.4f} ns ---")
        print(render_network(graph))

    assert 1 <= len(designs) <= NUM_RENDERED
    # The frontier must span a real trade-off: its ends differ in structure.
    graphs = [g for _, _, g in designs]
    sizes = [g.num_compute_nodes for g in graphs]
    depths = [g.depth() for g in graphs]
    assert all(g.is_legal() for g in graphs)
    if len(graphs) > 1:
        assert max(sizes) > min(sizes) or max(depths) > min(depths)
        # Denser designs should be analytically faster: the trade-off is real.
        metrics = [evaluate_analytical(g) for g in graphs]
        areas = [m.area for m in metrics]
        assert max(areas) > min(areas)
