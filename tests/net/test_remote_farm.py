"""Remote synthesis farm: byte-identical curves, prepared shipping, caches."""

from __future__ import annotations

import pytest

from repro.cells import nangate45
from repro.distributed import SynthesisFarm
from repro.net import FarmWorkerServer
from repro.prefix import brent_kung, kogge_stone, sklansky
from repro.synth import SynthesisCache, SynthesisEvaluator, synthesize_curve


@pytest.fixture(scope="module")
def worker():
    server = FarmWorkerServer(("127.0.0.1", 0))
    server.start()
    yield server
    server.stop()


@pytest.fixture(scope="module")
def expected():
    lib = nangate45()
    graphs = [sklansky(8), brent_kung(8), kogge_stone(8), sklansky(8)]
    return graphs, [synthesize_curve(g, lib).points() for g in graphs]


def addr(worker):
    return f"{worker.address[0]}:{worker.address[1]}"


class TestRemoteCurves:
    def test_prepared_shipping_matches_local(self, worker, expected):
        graphs, points = expected
        farm = SynthesisFarm("nangate45", num_workers=0, remote_workers=[addr(worker)])
        try:
            curves = farm.evaluate_curves(graphs)
            assert [c.points() for c in curves] == points
            stats = farm.last_stats
            assert stats.mode == "remote[1]"
            assert stats.unique_graphs == 3  # duplicate sklansky deduped
            assert stats.dispatched == 3
            assert stats.worker_opt_seconds > 0
            assert farm.stats()["remote"]["ship_prepared"] is True
        finally:
            farm.close()

    def test_graph_json_mode_matches_local(self, worker, expected):
        graphs, points = expected
        farm = SynthesisFarm(
            "nangate45",
            num_workers=0,
            remote_workers=[addr(worker)],
            ship_prepared=False,
        )
        try:
            curves = farm.evaluate_curves(graphs)
            assert [c.points() for c in curves] == points
        finally:
            farm.close()

    def test_cache_routes_around_the_wire(self, worker, expected):
        graphs, points = expected
        cache = SynthesisCache()
        farm = SynthesisFarm(
            "nangate45", num_workers=0, remote_workers=[addr(worker)], cache=cache
        )
        try:
            farm.evaluate_curves(graphs)
            first_dispatched = farm.last_stats.dispatched
            farm.evaluate_curves(graphs)
            assert first_dispatched == 3
            assert farm.last_stats.dispatched == 0  # all hits, nothing crossed
            assert farm.last_stats.cache_hits == 3
        finally:
            farm.close()

    def test_prepared_cache_hits_on_repeats(self, expected):
        graphs, points = expected
        server = FarmWorkerServer(("127.0.0.1", 0))
        server.start()
        farm = SynthesisFarm(
            "nangate45",
            num_workers=0,
            remote_workers=[f"{server.address[0]}:{server.address[1]}"],
        )
        try:
            farm.evaluate_curves(graphs)
            assert farm.last_stats.prepared_hits == 0
            farm.evaluate_curves(graphs)  # no dispatcher cache: re-dispatches
            assert farm.last_stats.prepared_hits == 3
            assert [c.points() for c in farm.evaluate_curves(graphs)] == points
        finally:
            farm.close()
            server.stop()

    def test_evaluator_routes_through_remote_farm(self, worker, expected):
        graphs, points = expected
        farm = SynthesisFarm("nangate45", num_workers=0, remote_workers=[addr(worker)])
        evaluator = SynthesisEvaluator(nangate45(), farm=farm)
        try:
            metrics = evaluator.evaluate_many(graphs)
            assert len(metrics) == len(graphs)
            assert farm.last_stats is not None and farm.last_stats.mode == "remote[1]"
            # The farm adopted the evaluator's cache: a repeat batch stays local.
            evaluator.evaluate_many(graphs)
            assert farm.last_stats.dispatched == 0
        finally:
            farm.close()

    def test_remote_conflicts_with_local_pool(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            SynthesisFarm("nangate45", num_workers=2, remote_workers=["h:1"])

    def test_dead_worker_is_a_clear_error_without_fallback(self, expected):
        graphs, _points = expected
        server = FarmWorkerServer(("127.0.0.1", 0))
        server.start()
        dead = f"{server.address[0]}:{server.address[1]}"
        server.stop()
        farm = SynthesisFarm(
            "nangate45",
            num_workers=0,
            remote_workers=[dead],
            remote_local_fallback=False,
        )
        try:
            with pytest.raises(RuntimeError, match="remote farm worker"):
                farm.evaluate_curves(graphs[:1])
        finally:
            farm.close()

    def test_dead_worker_falls_back_to_local_synthesis(self, expected):
        graphs, points = expected
        server = FarmWorkerServer(("127.0.0.1", 0))
        server.start()
        dead = f"{server.address[0]}:{server.address[1]}"
        server.stop()
        farm = SynthesisFarm("nangate45", num_workers=0, remote_workers=[dead])
        try:
            curves = farm.evaluate_curves(graphs)
            assert [c.points() for c in curves] == points  # byte-identical
            assert farm.last_stats.redispatched == 3
            assert farm.stats()["remote"]["redispatched_tasks"] == 3
        finally:
            farm.close()


class TestShippedDigestElision:
    """Dispatcher-side payload elision over the worker's prepared LRU."""

    def test_repeat_batches_ship_digest_only(self, expected):
        graphs, points = expected
        server = FarmWorkerServer(("127.0.0.1", 0))
        server.start()
        farm = SynthesisFarm(
            "nangate45",
            num_workers=0,
            remote_workers=[f"{server.address[0]}:{server.address[1]}"],
        )
        try:
            farm.evaluate_curves(graphs)
            assert farm.last_stats.shipped_elided == 0
            # No dispatcher cache: the repeat batch re-dispatches, but the
            # payloads are elided (the worker already holds the netlists).
            curves = farm.evaluate_curves(graphs)
            assert farm.last_stats.shipped_elided == 3
            assert farm.last_stats.prepared_hits == 3
            assert [c.points() for c in curves] == points
            assert farm.stats()["remote"]["shipped_elided"] == 3
        finally:
            farm.close()
            server.stop()

    def test_worker_eviction_triggers_full_reship(self, expected):
        graphs, points = expected
        server = FarmWorkerServer(("127.0.0.1", 0), prepared_cache_entries=1)
        server.start()
        farm = SynthesisFarm(
            "nangate45",
            num_workers=0,
            remote_workers=[f"{server.address[0]}:{server.address[1]}"],
        )
        try:
            farm.evaluate_curves(graphs)
            # The worker's 1-entry LRU evicted all but the last digest; the
            # dispatcher's elided repeats bounce off "missing" and are
            # re-shipped in full — byte-identical results either way.
            curves = farm.evaluate_curves(graphs)
            assert [c.points() for c in curves] == points
        finally:
            farm.close()
            server.stop()

    def test_disabled_prepared_cache_disables_elision(self, expected):
        graphs, points = expected
        server = FarmWorkerServer(("127.0.0.1", 0), prepared_cache_entries=0)
        server.start()
        farm = SynthesisFarm(
            "nangate45",
            num_workers=0,
            remote_workers=[f"{server.address[0]}:{server.address[1]}"],
        )
        try:
            farm.evaluate_curves(graphs)
            curves = farm.evaluate_curves(graphs)
            assert farm.last_stats.shipped_elided == 0
            assert [c.points() for c in curves] == points
        finally:
            farm.close()
            server.stop()

    def test_redial_after_drop_invalidates_shipped_lru(self, expected):
        """The satellite fix: a dropped connection wipes the per-worker
        shipped LRU *before* the retry payload is built, so a reconnect
        (idle drop, worker restart) never replays a stale prepared id."""
        graphs, points = expected
        server = FarmWorkerServer(("127.0.0.1", 0))
        server.start()
        farm = SynthesisFarm(
            "nangate45",
            num_workers=0,
            remote_workers=[f"{server.address[0]}:{server.address[1]}"],
        )
        try:
            farm.evaluate_curves(graphs)
            pool = farm._remote
            assert len(pool._shipped[0]) == 3
            # Simulate the idle drop the redial-on-use path covers.
            pool._drop(0)
            assert len(pool._shipped[0]) == 0
            # The next batch redials and ships full payloads again (no
            # digest-only replay) — and still matches byte-for-byte.
            curves = farm.evaluate_curves(graphs)
            assert farm.last_stats.shipped_elided == 0
            assert [c.points() for c in curves] == points
        finally:
            farm.close()
            server.stop()

    def test_mid_flight_drop_rebuilds_payload_on_retry(self, expected):
        """A wire failure *during* a call retries with payloads rebuilt
        against the wiped LRU — the worker that answers the retry may be a
        fresh process that never saw the digests."""
        graphs, points = expected
        server = FarmWorkerServer(("127.0.0.1", 0))
        server.start()
        farm = SynthesisFarm(
            "nangate45",
            num_workers=0,
            remote_workers=[f"{server.address[0]}:{server.address[1]}"],
        )
        try:
            farm.evaluate_curves(graphs)
            pool = farm._remote
            # Poison the live socket so the next call fails mid-flight and
            # takes the drop-then-redial path.
            pool._conns[0].sock.close()
            curves = farm.evaluate_curves(graphs)
            assert [c.points() for c in curves] == points
            assert farm.last_stats.shipped_elided == 0  # retry shipped full
        finally:
            farm.close()
            server.stop()


class TestMultiWorker:
    def test_chunks_spread_over_workers(self, expected):
        graphs, points = expected
        servers = [FarmWorkerServer(("127.0.0.1", 0)) for _ in range(2)]
        for s in servers:
            s.start()
        farm = SynthesisFarm(
            "nangate45",
            num_workers=0,
            remote_workers=[f"{s.address[0]}:{s.address[1]}" for s in servers],
        )
        try:
            curves = farm.evaluate_curves(graphs)
            assert [c.points() for c in curves] == points
            assert farm.last_stats.chunks == 2
            assert all(s.tasks_served > 0 for s in servers)
        finally:
            farm.close()
            for s in servers:
                s.stop()

    def test_dead_worker_redispatches_to_survivor(self, expected):
        """One of two workers dies before dispatch: its chunks are
        re-dispatched to the survivor and the batch still completes with
        byte-identical curves — the dispatch half of lease reclamation."""
        graphs, points = expected
        servers = [FarmWorkerServer(("127.0.0.1", 0)) for _ in range(2)]
        for s in servers:
            s.start()
        farm = SynthesisFarm(
            "nangate45",
            num_workers=0,
            remote_workers=[f"{s.address[0]}:{s.address[1]}" for s in servers],
            chunk_size=1,
        )
        try:
            servers[1].stop()  # dies before its first chunk
            curves = farm.evaluate_curves(graphs)
            assert [c.points() for c in curves] == points
            assert farm.last_stats.redispatched > 0
            assert servers[0].tasks_served == 3  # the survivor did it all
        finally:
            farm.close()
            servers[0].stop()
