"""CLI smoke tests (every subcommand exercised through main())."""

import json

import pytest

from repro.cli import main


class TestCli:
    def test_render(self, capsys):
        assert main(["render", "sklansky", "8"]) == 0
        out = capsys.readouterr().out
        assert "compute_nodes=12" in out

    def test_render_with_grid(self, capsys):
        assert main(["render", "brent_kung", "8", "--grid"]) == 0
        out = capsys.readouterr().out
        assert " I" in out  # grid view marker

    def test_eval_json(self, capsys):
        assert main(["eval", "kogge_stone", "16"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["compute_nodes"] == 49
        assert data["depth"] == 4

    def test_build_saves_design(self, tmp_path, capsys):
        out_file = tmp_path / "design.json"
        assert main(["build", "sklansky", "8", "--out", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert data["n"] == 8

    def test_roundtrip_through_file(self, tmp_path, capsys):
        out_file = tmp_path / "d.json"
        main(["build", "han_carlson", "8", "--out", str(out_file)])
        capsys.readouterr()
        assert main(["eval", str(out_file)]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["n"] == 8

    def test_synth_prints_curve(self, capsys):
        assert main(["synth", "sklansky", "8", "--library", "industrial8nm"]) == 0
        out = capsys.readouterr().out
        assert "delay (ns)" in out
        assert len(out.strip().splitlines()) >= 3

    def test_unknown_structure_exits(self):
        with pytest.raises(SystemExit):
            main(["eval", "no_such_structure", "8"])

    def test_unknown_library_exits(self):
        with pytest.raises(SystemExit):
            main(["synth", "sklansky", "8", "--library", "tsmc3"])

    def test_sweep_runs_small(self, capsys):
        assert main(["sweep", "6", "--weights", "2", "--steps", "25",
                     "--blocks", "0", "--channels", "4"]) == 0
        out = capsys.readouterr().out
        assert "frontier" in out


class TestCliRuntime:
    """The train subcommand's runtime/checkpoint flags."""

    TRAIN = ["train", "6", "--steps", "40", "--seed", "3",
             "--blocks", "0", "--channels", "4"]

    def test_runtime_sync_output_identical_to_trainer(self, capsys):
        assert main(self.TRAIN) == 0
        expected = capsys.readouterr().out
        assert main(self.TRAIN + ["--runtime", "sync"]) == 0
        assert capsys.readouterr().out == expected

    def test_preempt_then_resume_matches_uninterrupted(self, tmp_path, capsys):
        assert main(self.TRAIN) == 0
        expected = capsys.readouterr().out

        ckpt = str(tmp_path / "ckpt")
        assert main(self.TRAIN + ["--runtime", "sync", "--checkpoint-dir", ckpt,
                                  "--stop-after", "15"]) == 0
        captured = capsys.readouterr()
        assert "checkpointed at step 15" in captured.err
        assert "trained" not in captured.out

        assert main(self.TRAIN + ["--runtime", "sync", "--checkpoint-dir", ckpt,
                                  "--resume"]) == 0
        assert capsys.readouterr().out == expected

    def test_async_runtime_trains(self, capsys):
        assert main(self.TRAIN + ["--runtime", "async", "--actors", "2",
                                  "--envs-per-actor", "2"]) == 0
        out = capsys.readouterr().out
        assert "trained 40 steps" in out
        assert "frontier" in out

    def test_checkpoint_flags_require_dir(self):
        with pytest.raises(SystemExit, match="checkpoint-dir"):
            main(self.TRAIN + ["--runtime", "sync", "--stop-after", "10"])
        with pytest.raises(SystemExit, match="checkpoint-dir"):
            # 0 is falsy but still a request to stop.
            main(self.TRAIN + ["--runtime", "sync", "--stop-after", "0"])

    def test_checkpoint_dir_requires_runtime(self, tmp_path):
        with pytest.raises(SystemExit, match="runtime"):
            main(self.TRAIN + ["--checkpoint-dir", str(tmp_path / "c")])

    def test_resume_without_checkpoint_fails_clearly(self, tmp_path):
        from repro.rl import CheckpointError

        with pytest.raises(CheckpointError, match="no checkpoint found"):
            main(self.TRAIN + ["--runtime", "sync", "--resume",
                               "--checkpoint-dir", str(tmp_path / "empty")])
