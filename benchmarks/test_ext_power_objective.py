"""Extension bench — the power objective the paper leaves as future work.

Section V-A: "circuit power is an important metric that should ideally be
jointly optimized with area and delay ... We leave the integration of a
power objective to the optimization as future work."

This bench integrates the power model into the evaluation path and shows
the three-objective landscape: for each regular structure and each
synthesis operating point (relaxed vs tight), it reports (area, delay,
power) — demonstrating that power is not redundant with area (fast,
high-fanout structures burn disproportionately more dynamic power) and
that the machinery for a third reward channel exists end to end.
"""

from repro.cells import nangate45
from repro.netlist import prefix_adder_netlist
from repro.prefix import REGULAR_STRUCTURES
from repro.sta import estimate_power
from repro.synth import Synthesizer
from repro.utils import format_table

WIDTH = 16
STRUCTURES = ("ripple", "brent_kung", "han_carlson", "sklansky", "kogge_stone")


def run_power_landscape():
    lib = nangate45()
    tool = Synthesizer()
    rows = []
    for name in STRUCTURES:
        graph = REGULAR_STRUCTURES[name](WIDTH)
        netlist = prefix_adder_netlist(graph, lib)
        relaxed = tool.optimize(netlist, target=10.0)
        tight = tool.optimize(netlist, target=0.0)
        p_relaxed = estimate_power(relaxed.netlist, rng=0)
        p_tight = estimate_power(tight.netlist, rng=0)
        rows.append({
            "name": name,
            "relaxed": (relaxed.area, relaxed.delay, p_relaxed.total),
            "tight": (tight.area, tight.delay, p_tight.total),
        })
    return rows


def test_ext_power_objective(benchmark):
    rows = benchmark.pedantic(run_power_landscape, rounds=1, iterations=1)

    print(f"\n=== Extension: power as a third objective ({WIDTH}b, nangate45-like) ===")
    table = []
    for row in rows:
        ra, rd, rp = row["relaxed"]
        ta, td, tp = row["tight"]
        table.append([
            row["name"],
            f"{ra:.1f}", f"{rd:.4f}", f"{rp:.1f}",
            f"{ta:.1f}", f"{td:.4f}", f"{tp:.1f}",
        ])
    print(format_table(
        ["structure",
         "relaxed area", "relaxed delay", "relaxed uW",
         "tight area", "tight delay", "tight uW"],
        table,
    ))

    by_name = {r["name"]: r for r in rows}
    # Speed costs power: every structure burns more at the tight target.
    for row in rows:
        assert row["tight"][2] >= row["relaxed"][2] - 1e-9, row["name"]
    # Power is not area in disguise: Kogge-Stone pays more power than
    # Brent-Kung by a larger ratio than its area ratio (wiring/fanout-heavy
    # structures toggle more capacitance).
    ks, bk = by_name["kogge_stone"], by_name["brent_kung"]
    power_ratio = ks["relaxed"][2] / bk["relaxed"][2]
    assert power_ratio > 1.0
    # Ripple is the power floor at the relaxed point.
    floor = min(r["relaxed"][2] for r in rows)
    assert by_name["ripple"]["relaxed"][2] == floor
