"""ASCII rendering of prefix graphs.

Two views:

- :func:`render_grid` — the paper's MSB x LSB grid (Fig. 1 right-hand
  panels): inputs on the diagonal, outputs in column 0, interior nodes
  marked.
- :func:`render_network` — the classic prefix-network diagram (Fig. 7
  style): bit columns horizontally (MSB on the left), logic levels
  vertically, one marker per compute node with its span drawn as a rule.
"""

from __future__ import annotations

from repro.prefix.graph import PrefixGraph


def render_grid(graph: PrefixGraph) -> str:
    """Render the occupancy grid: ``I`` inputs, ``O`` outputs, ``#`` interior."""
    n = graph.n
    lines = []
    header = "     " + " ".join(f"{l:>2d}" for l in range(n))
    lines.append(header)
    for m in range(n):
        cells = []
        for l in range(n):
            if l > m:
                cells.append("  ")
            elif l == m:
                cells.append(" I")
            elif graph.has_node(m, l):
                cells.append(" O" if l == 0 else " #")
            else:
                cells.append(" .")
        lines.append(f"{m:>3d}: " + " ".join(c.strip().rjust(2) for c in cells))
    return "\n".join(lines) + "\n"


def render_network(graph: PrefixGraph) -> str:
    """Render the level-by-level network diagram.

    Bit ``n-1`` is the leftmost column (hardware convention). Each compute
    node ``(m, l)`` appears in its level row at column ``m`` as ``o``, with
    ``-`` drawn across the bits it spans down to its lower parent's column
    and ``+`` at the lower-parent tap. Nodes sharing a (level, msb) cell —
    possible for irregular graphs — are shown as a count digit.
    """
    n = graph.n
    levels = graph.levels()
    depth = graph.depth()
    col_of = {bit: 3 * (n - 1 - bit) for bit in range(n)}
    width = 3 * (n - 1) + 1

    header_cells = [" "] * width
    for bit in range(n):
        label = str(bit % 10)
        header_cells[col_of[bit]] = label
    lines = ["bit: " + "".join(header_cells)]

    for level in range(1, depth + 1):
        row = [" "] * width
        count_at = {}
        for m, l in graph.nodes():
            if l >= m or levels[m, l] != level:
                continue
            count_at[m] = count_at.get(m, 0) + 1
            _, (lpm, _) = graph.parents(m, l)
            start, end = col_of[m], col_of[lpm]
            for c in range(start + 1, end):
                if row[c] == " ":
                    row[c] = "-"
            row[end] = "+"
        for m, cnt in count_at.items():
            row[col_of[m]] = "o" if cnt == 1 else str(min(cnt, 9))
        lines.append(f"L{level:>2d}: " + "".join(row).rstrip())
    stats = (
        f"(n={n}, compute_nodes={graph.num_compute_nodes}, depth={depth}, "
        f"max_fanout={graph.max_fanout()})"
    )
    lines.append(stats)
    return "\n".join(lines) + "\n"
