"""The learner's network face: replay ingest, weight publication, shared cache.

:class:`LearnerServer` is what ``repro serve-learner`` (and
``TrainingRuntime(mode="cluster")``) listens with. It exposes the existing
in-process services of the asynchronous runtime to remote actor
*processes*:

- ``join`` — an actor registers, is assigned a replay shard, and receives
  the :class:`ClusterSpec` (environment + network architecture) so the
  actor CLI needs nothing but ``--connect``;
- ``pull_weights`` — versioned snapshots from the learner's
  :class:`repro.distributed.PolicyHub` (the paper's delayed-parameter
  publication), shipped only when the actor's version *and* content
  digest are both stale (digest-keyed pulls answer "unchanged" without
  re-shipping the npz);
- ``push_batch`` — one acting round's transitions; the server folds
  telemetry into the shared :class:`~repro.rl.trainer.TrainingHistory`
  under the ingest lock (the same accounting as the threaded runtime's
  coordinator), pushes the budget-kept prefix into the actor's shard of
  the :class:`repro.rl.replay.ShardedReplayBuffer`, and answers with the
  next epsilon and the stop flag — so pausing ingest (checkpoint at a
  round boundary) and stopping the run are ordinary replies, not extra
  machinery;
- ``cache_get`` / ``cache_put`` / ``cache_claim`` — a shared
  :class:`repro.synth.SynthesisCache` service behind a
  :class:`repro.synth.leases.SharedCacheService`: actors route synthesis
  lookups through the learner, which is what makes cache sharing work
  *across processes* (the threaded runtime got it for free from shared
  memory) and lets cluster checkpoints capture the cache. ``cache_claim``
  adds the claim/lease protocol: a miss is answered with the value, a
  granted lease ("you synthesize it") or "wait" (someone else already is),
  so concurrent actors never synthesize the same digest twice. Leases die
  with their connection (the per-connection owner token is released on
  disconnect, i.e. on the existing heartbeat timeout) or by age.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro import obs
from repro.net.config import ClusterConfig
from repro.obs.aggregate import FleetObs
from repro.net.protocol import DEFAULT_HEARTBEAT_TIMEOUT, DEFAULT_MAX_FRAME_BYTES
from repro.net.server import FramedServer
from repro.store.api import CurveStore
from repro.synth.cache import SynthesisCache
from repro.synth.curve import AreaDelayCurve
from repro.synth.leases import SharedCacheService

# The elastic-membership counter schema: every ``_stats`` reply (and the
# cluster's stderr telemetry) carries exactly these keys — pinned by the
# schema test alongside ``repro.synth.backend.STATS_KEYS``.
MEMBERSHIP_KEYS = ("joins", "rejoins", "evictions", "throttled_batches")


@dataclass
class ClusterSpec:
    """Everything a remote actor needs to rebuild the collection setup.

    Cell libraries and synthesizers are code, not data: only names and
    scalars cross the wire. ``seed`` is the base environment seed; actor
    ``k`` gets ``seed + k * envs_per_actor`` (matching the CLI's threaded
    async layout) plus a derived exploration stream.
    """

    width: int
    horizon: int = 24
    envs_per_actor: int = 4
    library: str = "nangate45"
    w_area: float = 0.5
    w_delay: float = 0.5
    c_area: float = 0.001
    c_delay: float = 10.0
    seed: int = 0
    blocks: int = 2
    channels: int = 16
    dtype: str = "float64"
    fast_conv: bool = False
    # Fleet-wide knobs (heartbeat window, store location, inference
    # service). ``asdict`` flattens the nested dataclass to a plain dict
    # on the wire; actors read named keys, so older peers ignore it.
    config: "ClusterConfig | None" = None

    @classmethod
    def for_agent(cls, agent, **kwargs) -> "ClusterSpec":
        """Derive width/architecture/scalarization from a live agent."""
        return cls(
            width=agent.n,
            w_area=float(agent.w[0]),
            w_delay=float(agent.w[1]),
            blocks=agent.local.blocks,
            channels=agent.local.channels,
            dtype=np.dtype(agent.local.dtype).name,
            fast_conv=bool(agent.local.fast_conv),
            **kwargs,
        )


def encode_cache_key(key: tuple) -> "list":
    return list(key)


def decode_cache_key(key: "list") -> tuple:
    return tuple(key)


class LearnerState:
    """Shared state behind a :class:`LearnerServer`'s method handlers.

    The learner thread and the per-actor handler threads meet here: the
    ``lock`` guards history/actor bookkeeping, and ``ingest_lock``
    additionally serializes whole push rounds so the learner can quiesce
    ingestion at a round boundary (checkpoint) by holding it.
    """

    def __init__(
        self,
        agent,
        hub,
        buffer,
        history,
        schedule,
        total,
        spec: ClusterSpec,
        cache: "CurveStore | None" = None,
        halt_at: "int | None" = None,
        lease_timeout: float = 60.0,
        grads_allowed_fn=None,
        backpressure_lag: int = 0,
        throttle_seconds: float = 0.05,
    ):
        self.agent = agent
        self.hub = hub
        self.buffer = buffer
        self.history = history
        self.schedule = schedule
        self.total = total
        self.spec = spec
        self.cache_service = SharedCacheService(
            cache if cache is not None else SynthesisCache(),
            lease_timeout=lease_timeout,
        )
        self.cache = self.cache_service.cache
        # Ingest never records past this step: the budget, tightened by a
        # requested preemption point so the halt snapshot lands exactly
        # there no matter how actor pushes interleave.
        self.limit = total if halt_at is None else min(total, halt_at)
        self.lock = threading.Lock()
        self.ingest_lock = threading.RLock()
        self.stop = False
        self.actors: "dict[int, dict]" = {}
        self.ever_joined = 0
        # Replay-ingest backpressure: when the learner lags the synchronous
        # gradient cadence by more than ``backpressure_lag`` gradient steps
        # (0 disables), push_batch replies carry a throttle hint actors
        # honor — a slow learner degrades gracefully instead of drowning.
        self.grads_allowed_fn = grads_allowed_fn
        self.backpressure_lag = backpressure_lag
        self.throttle_seconds = throttle_seconds
        self._session_ids = itertools.count(1)
        self.joins = 0
        self.rejoins = 0
        self.evictions = 0
        self.throttled_batches = 0
        # Fleet observability: worker-pushed metric snapshots (retained
        # across rejoins/respawns) and the run id every round trace
        # minted here carries.
        self.fleet_obs = FleetObs()
        self.obs_run = obs.run_id() or obs.trace.new_id()

    # -- bookkeeping -----------------------------------------------------

    def env_steps(self) -> int:
        with self.lock:
            return self.history.env_steps

    def gradient_steps(self) -> int:
        with self.lock:
            return self.history.gradient_steps

    def record_loss(self, loss: float) -> None:
        with self.lock:
            self.history.losses.append(loss)
            self.history.gradient_steps += 1

    def connected_actors(self) -> int:
        with self.lock:
            return sum(a["connected"] for a in self.actors.values())

    def epsilon_now(self) -> float:
        with self.lock:
            return float(self.schedule(min(self.history.env_steps, self.total)))

    # -- join / leave ----------------------------------------------------

    def join(self, session: "str | None" = None) -> "tuple[int, dict]":
        """Assign (or reassign) a replay shard; elastic membership.

        An actor presenting the ``session`` token from an earlier join
        reclaims its own shard — episode-return accumulators survive the
        redial, so a supervised reconnect is invisible to telemetry. The
        token is *rotated* on every join: the old token proves identity
        once, then dies, so a zombie connection still holding it can
        neither push stale rounds nor mark the slot disconnected. A
        fresh join takes the first shard (in slot order) that is either
        never-assigned or held by a dead connection; taking over a dead
        slot *evicts* it — the old session token is invalidated and a
        stale rejoin gets a fresh assignment instead. Only a cluster
        whose every shard is held by a live connection is full.
        """
        with self.lock:
            if session is not None:
                for shard, actor in self.actors.items():
                    if actor["session"] == session:
                        # Takeover is legal even while the slot still looks
                        # connected: the old socket is dead or dying, and
                        # its eventual stale leave() is ignored.
                        actor["connected"] = True
                        actor["disconnected_at"] = None
                        actor["session"] = f"sess-{next(self._session_ids)}"
                        self.rejoins += 1
                        return shard, self._join_reply(shard, actor, rejoin=True)
                # Unknown token (learner restarted, or we were evicted):
                # fall through to a fresh assignment.
            shard = None
            for candidate in range(self.buffer.num_shards):
                if candidate not in self.actors:
                    shard = candidate
                    break
                if not self.actors[candidate]["connected"]:
                    shard = candidate
                    self.evictions += 1
                    break
            if shard is None:
                raise RuntimeError(
                    f"cluster is full: all {self.buffer.num_shards} actor "
                    "slots are taken"
                )
            actor = {
                "connected": True,
                "episode_returns": [0.0] * self.spec.envs_per_actor,
                "session": f"sess-{next(self._session_ids)}",
                "disconnected_at": None,
            }
            self.actors[shard] = actor
            self.joins += 1
            self.ever_joined += 1
            return shard, self._join_reply(shard, actor)

    def _mint_round_trace(self) -> dict:
        """A fresh trace context for an actor's next acting round.

        Minted learner-side (join and push_batch replies) so every round
        of every actor is rooted in one run's id space; the ``round_trace``
        event is the lineage record that lets a severed round's orphaned
        trace id still be attributed to this run.
        """
        trace = obs.trace.new_trace(self.obs_run)
        obs.emit("round_trace", id=trace["id"])
        return trace

    def _join_reply(self, shard: int, actor: dict, rejoin: bool = False) -> dict:
        # Callers hold self.lock.
        return {
            "actor_id": shard,
            "session": actor["session"],
            "rejoin": rejoin,
            "spec": asdict(self.spec),
            "env_seed": self.spec.seed + shard * self.spec.envs_per_actor,
            "exploration_seed": self.spec.seed + 7_919 * (shard + 1),
            "total": self.total,
            "env_steps": self.history.env_steps,
            "epsilon": float(
                self.schedule(min(self.history.env_steps, self.total))
            ),
            "stop": self.stop or self.history.env_steps >= self.total,
            "trace": self._mint_round_trace(),
        }

    def leave(self, actor_id: "int | None", session: "str | None" = None) -> None:
        if actor_id is None:
            return
        with self.lock:
            actor = self.actors.get(actor_id)
            if actor is None:
                return
            if session is not None and actor["session"] != session:
                return  # stale leave from a connection that was taken over
            actor["connected"] = False
            actor["disconnected_at"] = time.monotonic()

    def membership_dict(self) -> dict:
        """The :data:`MEMBERSHIP_KEYS` counters (one schema everywhere)."""
        with self.lock:
            return {
                "joins": self.joins,
                "rejoins": self.rejoins,
                "evictions": self.evictions,
                "throttled_batches": self.throttled_batches,
            }

    # -- ingest ----------------------------------------------------------

    def push_batch(
        self, actor_id: int, batch: dict, session: "str | None" = None
    ) -> dict:
        """Fold one remote acting round; returns the actor's next marching
        orders. Mirrors the threaded coordinator's ``record_round``: the
        step budget may truncate the round, and only the kept prefix
        enters the replay shard."""
        from repro.rl.replay import Transition

        rewards = np.asarray(batch["rewards"], dtype=np.float64)
        dones = np.asarray(batch["dones"], dtype=bool)
        areas = np.asarray(batch["areas"], dtype=np.float64)
        delays = np.asarray(batch["delays"], dtype=np.float64)
        num = rewards.shape[0]
        with self.ingest_lock:
            with self.lock:
                actor = self.actors.get(actor_id)
                if actor is None:
                    raise RuntimeError(f"actor {actor_id} never joined")
                if session is not None and actor["session"] != session:
                    # A rejoining actor took this shard over; the old
                    # connection's in-flight round must not double-ingest.
                    raise RuntimeError(
                        f"stale session for actor {actor_id}: the shard was "
                        "reassigned (rejoin with your session token)"
                    )
                history = self.history
                if self.stop:
                    # The learner is halting (preemption or budget): the
                    # final snapshot may already be staged, so record
                    # nothing — the actor just learns it is time to leave.
                    return {
                        "kept": 0,
                        "env_steps": history.env_steps,
                        "epsilon": float(
                            self.schedule(min(history.env_steps, self.total))
                        ),
                        "stop": True,
                        "trace": self._mint_round_trace(),
                    }
                epsilon = float(batch["epsilon"])
                returns = actor["episode_returns"]
                if num > len(returns):
                    # The replica count is the actor's to choose; the spec's
                    # envs_per_actor only sizes the initial slots.
                    returns.extend([0.0] * (num - len(returns)))
                kept = 0
                for i in range(num):
                    if history.env_steps >= self.limit:
                        break
                    actor["episode_returns"][i] += float(self.hub.w @ rewards[i])
                    history.areas.append(float(areas[i]))
                    history.delays.append(float(delays[i]))
                    history.epsilon_trace.append(epsilon)
                    history.env_steps += 1
                    kept += 1
                    if dones[i]:
                        history.episode_returns.append(actor["episode_returns"][i])
                        actor["episode_returns"][i] = 0.0
                env_steps = history.env_steps
                stop = self.stop or env_steps >= self.total
                next_epsilon = float(self.schedule(min(env_steps, self.total)))
                throttle = 0.0
                if (
                    not stop
                    and self.backpressure_lag
                    and self.grads_allowed_fn is not None
                ):
                    lag = self.grads_allowed_fn(env_steps) - history.gradient_steps
                    if lag > self.backpressure_lag:
                        throttle = self.throttle_seconds
                        self.throttled_batches += 1
            states = np.asarray(batch["states"])
            actions = np.asarray(batch["actions"])
            next_states = np.asarray(batch["next_states"])
            next_masks = np.asarray(batch["next_masks"])
            for i in range(kept):
                self.buffer.push(
                    Transition(
                        state=states[i],
                        action=int(actions[i]),
                        reward=rewards[i],
                        next_state=next_states[i],
                        next_mask=next_masks[i],
                        done=bool(dones[i]),
                    ),
                    shard=actor_id,
                )
        obs.counter("learner.push_batches").inc()
        obs.counter("learner.transitions_kept").inc(kept)
        if throttle:
            obs.counter("learner.throttled_batches").inc()
        reply = {
            "kept": kept,
            "env_steps": env_steps,
            "epsilon": next_epsilon,
            "stop": stop,
            "trace": self._mint_round_trace(),
        }
        if throttle:
            reply["throttle"] = throttle
        return reply


class LearnerServer(FramedServer):
    """The framed-protocol face of a cluster learner.

    Constructed unbound from state: ``repro cluster`` binds the port (so
    actor subprocesses know where to dial) before the runtime has built or
    restored its training state, then :meth:`attach` publishes the state
    and unblocks waiting handlers.
    """

    roles = ("actor", "observer")

    def __init__(
        self,
        address: "tuple[str, int]" = ("127.0.0.1", 0),
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        state_wait: float = 60.0,
    ):
        super().__init__(
            address, max_frame_bytes=max_frame_bytes, heartbeat_timeout=heartbeat_timeout
        )
        self.state: "LearnerState | None" = None
        self.state_wait = state_wait
        # Server-side cap on a long-poll claim park: one third of the
        # heartbeat window, so a parked reply always lands well inside
        # the client's recv timeout.
        self.claim_park_cap = max(0.5, heartbeat_timeout / 3.0)
        self._state_ready = threading.Event()
        self._owner_ids = itertools.count(1)
        self.methods = {
            "join": self._join,
            "pull_weights": self._pull_weights,
            "push_batch": self._push_batch,
            "cache_get": self._cache_get,
            "cache_put": self._cache_put,
            "cache_claim": self._cache_claim,
            "push_obs": self._push_obs,
            "stats": self._stats,
        }

    def attach(self, state: LearnerState) -> None:
        self.state = state
        self._state_ready.set()

    # -- connection hooks ------------------------------------------------

    def on_connect(self, conn, hello):
        if not self._state_ready.wait(timeout=self.state_wait):
            raise RuntimeError("learner is not ready (no training state attached)")
        return {
            "conn": conn,
            "hello": hello,
            "actor_id": None,
            "session": None,
            # Lease-ownership token: dies with the connection, so a peer
            # dropped by the heartbeat timeout frees its leases at once.
            "cache_owner": f"conn-{next(self._owner_ids)}",
        }

    def on_disconnect(self, ctx) -> None:
        if self.state is not None:
            # Session-scoped leave: if a rejoin already took the shard
            # over, this connection's death must not mark it disconnected.
            self.state.leave(ctx.get("actor_id"), ctx.get("session"))
            self.state.cache_service.release_owner(ctx.get("cache_owner"))

    # -- methods ---------------------------------------------------------

    def _join(self, ctx, params) -> dict:
        if ctx["actor_id"] is not None:
            raise RuntimeError(f"connection already joined as actor {ctx['actor_id']}")
        actor_id, reply = self.state.join((params or {}).get("session"))
        ctx["actor_id"] = actor_id
        ctx["session"] = reply["session"]
        return reply

    def _pull_weights(self, ctx, params) -> dict:
        # Digest-keyed: "unchanged" (no weights in the reply) when the
        # client's version *or* content digest matches, so steady-state
        # pulls and reconnects-after-resume never re-ship the full npz.
        version, digest, weights = self.state.hub._pull(
            int(params["have_version"]), params.get("have_digest")
        )
        reply = {"version": version, "digest": digest}
        if weights is not None:
            reply["weights"] = weights
        return reply

    def _push_batch(self, ctx, params) -> dict:
        if ctx["actor_id"] is None:
            raise RuntimeError("push_batch before join")
        # Piggybacked metric snapshot (new actors send one every round;
        # absent from old actors, and ignored by old learners in turn).
        self.state.fleet_obs.update(params.get("obs_source"), params.get("obs"))
        return self.state.push_batch(
            ctx["actor_id"], params, session=ctx.get("session")
        )

    def _push_obs(self, ctx, params) -> dict:
        """A worker's cumulative metric snapshot, outside the push cadence.

        ``final=True`` (clean teardown) retires the source: its totals are
        folded into the retained fleet aggregate, so a respawned process
        restarting its counters from zero no longer loses the work its
        predecessor reported.
        """
        params = params or {}
        state = self.state
        state.fleet_obs.update(params.get("source"), params.get("snapshot"))
        if params.get("final"):
            state.fleet_obs.retire(params.get("source"))
        return {"ok": True}

    def _cache_get(self, ctx, params) -> dict:
        keys = [decode_cache_key(k) for k in params["keys"]]
        values = self.state.cache.get_many(keys)
        return {
            "curves": [None if v is None else v.points() for v in values],
        }

    def _cache_put(self, ctx, params) -> dict:
        items = [
            (decode_cache_key(key), AreaDelayCurve.from_points(points))
            for key, points in params["items"]
        ]
        self.state.cache_service.put(
            items, owner=ctx["cache_owner"], lease_ids=params.get("leases")
        )
        return {"stored": len(items)}

    def _cache_claim(self, ctx, params) -> dict:
        keys = [decode_cache_key(k) for k in params["keys"]]
        kwargs = {}
        if params.get("wait"):
            # Long-poll: park this connection's handler thread at the
            # service until a key resolves. The park is capped well below
            # the heartbeat window (and below any client-requested
            # budget), so the client's recv timeout can never fire
            # mid-park — it just re-claims. Old actors never send "wait"
            # and keep the instant-reply contract.
            timeout = self.claim_park_cap
            if params.get("wait_timeout") is not None:
                timeout = min(timeout, float(params["wait_timeout"]))
            kwargs = {"wait": True, "wait_timeout": max(timeout, 0.05)}
        replies = self.state.cache_service.claim(
            keys,
            ctx["cache_owner"],
            counted=bool(params.get("counted", True)),
            **kwargs,
        )
        results = []
        for reply in replies:
            if "curve" in reply:
                results.append({"curve": reply["curve"].points()})
            else:
                results.append(reply)
        # "long_poll" is the capability marker new clients read to decide
        # whether wait=True claims actually park (vs the one-release
        # client-side compatibility shim against old servers).
        return {"results": results, "long_poll": True}

    def _stats(self, ctx, params) -> dict:
        state = self.state
        with state.lock:
            stats = {
                "env_steps": state.history.env_steps,
                "gradient_steps": state.history.gradient_steps,
                "total": state.total,
                "actors_connected": sum(
                    a["connected"] for a in state.actors.values()
                ),
                "buffer_size": len(state.buffer),
                "cache_entries": len(state.cache),
                "active_leases": state.cache_service.active_leases(),
                "stop": state.stop,
            }
            for key in MEMBERSHIP_KEYS:
                stats[key] = getattr(state, key)
        stats["obs"] = {
            "run": state.obs_run,
            "fleet": state.fleet_obs.merged(),
            "learner": obs.REGISTRY.snapshot(),
            "sources": state.fleet_obs.counts(),
        }
        return stats
