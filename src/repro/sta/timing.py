"""Forward/backward static timing analysis."""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.ir import Netlist


@dataclass
class TimingReport:
    """Result of one timing analysis.

    Attributes:
        delay: worst arrival over primary outputs (ns).
        target: the required time used for slacks (None = unconstrained).
        wns: worst negative slack (``target - delay``; +inf if no target).
        arrival: net -> arrival time.
        required: net -> required time (empty if no target).
        slack: net -> required - arrival (empty if no target).
        critical_path: instance names from the path's first gate to the
            gate driving the worst output.
        area: netlist cell area at analysis time (convenience for loggers).
    """

    delay: float
    target: "float | None"
    wns: float
    arrival: "dict[str, float]"
    required: "dict[str, float]"
    slack: "dict[str, float]"
    critical_path: "list[str]"
    area: float

    def instance_slack(self, netlist: Netlist, name: str) -> float:
        """Slack of an instance = slack of its output net."""
        if not self.slack:
            raise ValueError("analysis ran without a target; no slacks available")
        return self.slack[netlist.instances[name].output_net]


def net_load(netlist: Netlist, net: str) -> float:
    """Capacitive load on ``net``: pin caps + wire cap + port cap (fF)."""
    lib = netlist.library
    sinks = netlist.sinks_of(net)
    load = lib.wire_cap_per_fanout * len(sinks)
    for inst_name, pin in sinks:
        load += netlist.instances[inst_name].cell.input_caps[pin]
    if net in netlist.outputs:
        load += lib.output_port_cap
    return load


def analyze_timing(
    netlist: Netlist,
    target: "float | None" = None,
    input_arrivals: "dict[str, float] | None" = None,
) -> TimingReport:
    """Run STA; see :class:`TimingReport`.

    Arrival at primary inputs defaults to 0 (the paper's uniform arrival);
    ``input_arrivals`` overrides per input, enabling the nonuniform timing
    constraints the paper lists as future work (Section VI). If ``target``
    is given, required times and slacks are computed and ``wns`` reflects
    the worst output.
    """
    arrival: "dict[str, float]" = {net: 0.0 for net in netlist.inputs}
    if input_arrivals:
        unknown = set(input_arrivals) - set(netlist.inputs)
        if unknown:
            raise ValueError(f"input_arrivals for non-input nets: {sorted(unknown)}")
        arrival.update(input_arrivals)
    loads: "dict[str, float]" = {}
    order = netlist.topological_order()

    # Forward pass: arrival times. Track each net's worst contributing
    # (instance, input net) so critical-path extraction is a direct walk.
    worst_arc: "dict[str, tuple[str, str]]" = {}
    for name in order:
        inst = netlist.instances[name]
        out = inst.output_net
        load = loads.get(out)
        if load is None:
            load = net_load(netlist, out)
            loads[out] = load
        best = -1.0
        best_src = None
        for pin, net in inst.input_nets():
            t = arrival[net] + inst.cell.arc_delay(pin, load)
            if t > best:
                best = t
                best_src = net
        arrival[out] = best
        worst_arc[out] = (name, best_src)

    if netlist.outputs:
        worst_out = max(netlist.outputs, key=lambda n: arrival[n])
        delay = arrival[worst_out]
    else:
        worst_out = None
        delay = 0.0

    critical_path: "list[str]" = []
    net = worst_out
    while net is not None and net in worst_arc:
        inst_name, src = worst_arc[net]
        critical_path.append(inst_name)
        net = src
    critical_path.reverse()

    required: "dict[str, float]" = {}
    slack: "dict[str, float]" = {}
    wns = float("inf")
    if target is not None:
        for net_name in netlist.outputs:
            required[net_name] = target
        for name in reversed(order):
            inst = netlist.instances[name]
            out = inst.output_net
            req_out = required.get(out, float("inf"))
            load = loads[out]
            for pin, net_name in inst.input_nets():
                cand = req_out - inst.cell.arc_delay(pin, load)
                prev = required.get(net_name, float("inf"))
                if cand < prev:
                    required[net_name] = cand
        for net_name, arr in arrival.items():
            slack[net_name] = required.get(net_name, float("inf")) - arr
        wns = target - delay

    return TimingReport(
        delay=delay,
        target=target,
        wns=wns,
        arrival=arrival,
        required=required,
        slack=slack,
        critical_path=critical_path,
        area=netlist.area(),
    )
