"""Baseline algorithm tests: SA, PS, CL and the random-walk control."""

import numpy as np
import pytest

from repro.baselines import (
    PruningRules,
    cross_layer_optimization,
    pruned_search,
    random_walk_frontier,
    sa_frontier,
    simulated_annealing,
)
from repro.baselines.cl import RidgePredictor, graph_feature_vector
from repro.prefix import brent_kung, kogge_stone, ripple_carry, sklansky
from repro.synth import AnalyticalEvaluator


@pytest.fixture
def evaluator():
    return AnalyticalEvaluator(0.5, 0.5)


class TestSimulatedAnnealing:
    def test_improves_over_start(self, evaluator):
        res = simulated_annealing(8, evaluator, iterations=600, rng=0)
        start_cost = evaluator.scalarize(evaluator.evaluate(ripple_carry(8)))
        assert res.best_cost <= start_cost

    def test_deterministic_with_seed(self, evaluator):
        a = simulated_annealing(8, evaluator, iterations=200, rng=5)
        b = simulated_annealing(8, evaluator, iterations=200, rng=5)
        assert a.best_cost == b.best_cost
        assert a.accepted == b.accepted

    def test_archive_counts_every_eval(self, evaluator):
        res = simulated_annealing(8, evaluator, iterations=100, rng=1)
        assert res.archive.num_seen == 101  # start + each candidate

    def test_custom_start(self, evaluator):
        res = simulated_annealing(8, evaluator, iterations=50, start=sklansky(8), rng=2)
        assert res.iterations == 50

    def test_bad_iterations(self, evaluator):
        with pytest.raises(ValueError):
            simulated_annealing(8, evaluator, iterations=0)

    def test_best_graph_is_legal(self, evaluator):
        res = simulated_annealing(8, evaluator, iterations=300, rng=3)
        assert res.best_graph.is_legal()

    def test_frontier_covers_tradeoff(self, evaluator):
        archive = sa_frontier(
            8,
            lambda wa, wd: AnalyticalEvaluator(wa, wd),
            weights=[0.2, 0.5, 0.8],
            iterations_per_weight=400,
            seed=0,
        )
        front = archive.points()
        assert len(front) >= 3
        areas = [a for a, _ in front]
        assert max(areas) > min(areas)  # a real spread, not one point


class TestPrunedSearch:
    def test_pruning_rules_admit_regular_structures(self):
        rules = PruningRules()
        assert rules.admits(sklansky(8))  # fanout 4 at 8b passes the cap
        assert rules.admits(brent_kung(16))
        assert rules.admits(kogge_stone(16))

    def test_pruning_rejects_ripple_depth(self):
        # Ripple's depth n-1 violates the level-slack heuristic for n >= 8.
        assert not PruningRules(level_slack=2).admits(ripple_carry(16))

    def test_fanout_rule(self):
        # Sklansky 32 has fanout 16 — pruned away by the default cap of 6.
        assert not PruningRules().admits(sklansky(32))

    def test_designs_unique_and_legal(self, evaluator):
        res = pruned_search(8, evaluator, max_designs=80)
        keys = {g.key() for g in res.designs}
        assert len(keys) == len(res.designs)
        assert all(g.is_legal() for g in res.designs)

    def test_all_designs_satisfy_rules(self, evaluator):
        rules = PruningRules()
        res = pruned_search(8, evaluator, rules=rules, max_designs=60)
        assert all(rules.admits(g) for g in res.designs)

    def test_respects_budget(self, evaluator):
        res = pruned_search(8, evaluator, max_designs=25)
        assert res.admitted <= 25

    def test_explored_at_least_admitted(self, evaluator):
        res = pruned_search(8, evaluator, max_designs=50)
        assert res.explored >= res.admitted


class TestCrossLayer:
    def test_feature_vector_shape(self):
        f = graph_feature_vector(sklansky(8))
        assert f.shape == (9,)
        assert f[0] == 1.0  # bias term

    def test_features_distinguish_structures(self):
        fa = graph_feature_vector(sklansky(16))
        fb = graph_feature_vector(brent_kung(16))
        assert not np.allclose(fa, fb)

    def test_ridge_fits_linear_data(self, rng):
        x = rng.normal(size=(50, 4))
        w_true = rng.normal(size=(4, 2))
        y = x @ w_true
        pred = RidgePredictor(alpha=1e-8)
        pred.fit(x, y)
        assert pred.r_squared(x, y) > 0.999

    def test_ridge_requires_fit(self):
        with pytest.raises(RuntimeError):
            RidgePredictor().predict(np.zeros((1, 4)))

    def test_pipeline_with_analytical_oracle(self, evaluator):
        # Using the analytical evaluator as the "expensive" oracle keeps
        # this test fast while exercising the full pipeline.
        res = cross_layer_optimization(
            8, evaluator, sample_size=12, select_size=8, max_candidates=80, rng=0
        )
        assert res.candidates > 20
        assert res.synthesized <= 20
        assert res.predictor_r2 > 0.2  # structure features predict the model
        assert len(res.archive.points()) >= 1


class TestRandomWalk:
    def test_collects_requested_steps(self, evaluator):
        archive = random_walk_frontier(8, evaluator, steps=120, rng=0)
        assert archive.num_seen == 120

    def test_bad_steps(self, evaluator):
        with pytest.raises(ValueError):
            random_walk_frontier(8, evaluator, steps=0)

    def test_restarts_cover_both_seeds(self, evaluator):
        archive = random_walk_frontier(8, evaluator, steps=70, restart_every=16, rng=1)
        # Ripple (area 7) must appear among seen points via restarts.
        assert any(a == 7.0 for a, _ in archive.points()) or archive.num_seen == 70
