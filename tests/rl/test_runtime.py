"""The asynchronous actor-learner runtime and its deterministic fallback."""

import numpy as np
import pytest

from repro.env import PrefixEnv, VectorPrefixEnv
from repro.rl import (
    RuntimeConfig,
    ScalarizedDoubleDQN,
    Trainer,
    TrainerConfig,
    TrainingRuntime,
)
from repro.synth import AnalyticalEvaluator, SynthesisCache, SynthesisEvaluator


def make_agent(seed=0, n=6):
    return ScalarizedDoubleDQN(n, 0.5, 0.5, blocks=0, channels=4, lr=1e-3, rng=seed)


def make_env(seed=0, n=6):
    return PrefixEnv(n, AnalyticalEvaluator(0.5, 0.5), horizon=12, rng=seed)


CFG = TrainerConfig(steps=60, batch_size=4, warmup_steps=8)


def assert_histories_identical(a, b):
    assert a.env_steps == b.env_steps
    assert a.gradient_steps == b.gradient_steps
    for f in ("losses", "episode_returns", "areas", "delays", "epsilon_trace"):
        assert getattr(a, f) == getattr(b, f), f


class TestSyncMode:
    def test_bit_identical_to_trainer_single_env(self):
        h_trainer = Trainer(make_env(), make_agent(), CFG, rng=0).run()
        h_runtime = TrainingRuntime(
            make_env(), make_agent(), CFG, RuntimeConfig(mode="sync"), rng=0
        ).run()
        assert_histories_identical(h_trainer, h_runtime)

    def test_bit_identical_to_trainer_vector_env(self):
        def venv():
            return VectorPrefixEnv.make(
                6, lambda: AnalyticalEvaluator(0.5, 0.5), num_envs=3, horizon=12, seed=0
            )

        h_trainer = Trainer(venv(), make_agent(), CFG, rng=0).run()
        h_runtime = TrainingRuntime(
            venv(), make_agent(), CFG, RuntimeConfig(mode="sync"), rng=0
        ).run()
        assert_histories_identical(h_trainer, h_runtime)

    def test_rejects_env_list(self):
        with pytest.raises(ValueError, match="single environment"):
            TrainingRuntime([make_env()], make_agent(), CFG, RuntimeConfig(mode="sync"))

    def test_weights_equal_after_identical_runs(self):
        agent_a, agent_b = make_agent(), make_agent()
        Trainer(make_env(), agent_a, CFG, rng=0).run()
        TrainingRuntime(
            make_env(), agent_b, CFG, RuntimeConfig(mode="sync"), rng=0
        ).run()
        for ka, kb in zip(
            agent_a.local.state_arrays().items(), agent_b.local.state_arrays().items()
        ):
            assert ka[0] == kb[0]
            np.testing.assert_array_equal(ka[1], kb[1])


class TestAsyncMode:
    def _runtime(self, num_actors=2, steps=60, seed=0, **runtime_kwargs):
        envs = [make_env(seed=seed + 10 * i) for i in range(num_actors)]
        cfg = TrainerConfig(steps=steps, batch_size=4, warmup_steps=8)
        return TrainingRuntime(
            envs, make_agent(seed), cfg,
            RuntimeConfig(mode="async", num_actors=num_actors, **runtime_kwargs),
            rng=seed,
        )

    def test_reaches_budget_with_consistent_counters(self):
        rt = self._runtime()
        h = rt.run()
        assert h.env_steps == 60
        assert len(h.areas) == len(h.delays) == len(h.epsilon_trace) == 60
        assert len(h.losses) == h.gradient_steps
        # Learner cadence matches the synchronous loop: first gradient step
        # when the warmup fills, then one per learn_every env steps.
        expected = (60 - CFG.warmup_steps) // CFG.learn_every + 1
        assert h.gradient_steps == expected

    def test_actor_count_must_match_envs(self):
        with pytest.raises(ValueError, match="needs 3 environments"):
            TrainingRuntime(
                [make_env(), make_env(1)], make_agent(), CFG,
                RuntimeConfig(mode="async", num_actors=3),
            )

    def test_vector_envs_per_actor(self):
        envs = [
            VectorPrefixEnv.make(
                6, lambda: AnalyticalEvaluator(0.5, 0.5), num_envs=2,
                horizon=12, seed=i * 7,
            )
            for i in range(2)
        ]
        rt = TrainingRuntime(
            envs, make_agent(), CFG, RuntimeConfig(mode="async", num_actors=2), rng=0
        )
        h = rt.run()
        assert h.env_steps == 60

    def test_weight_publication_reaches_actors(self):
        rt = self._runtime(publish_every=1)
        h = rt.run()
        assert h.gradient_steps > 0
        # Episodes complete and returns accumulate across actors.
        assert len(h.episode_returns) >= 2

    def test_epsilon_anneals(self):
        # Actors interleave, so the trace need not be perfectly sorted —
        # but it starts fully exploratory and ends mostly greedy.
        h = self._runtime().run()
        assert h.epsilon_trace[0] == 1.0
        assert min(h.epsilon_trace) < 0.2
        assert h.epsilon_trace[-1] < 0.5

    def test_shared_cache_across_actors(self):
        from repro.cells import nangate45

        library = nangate45()
        cache = SynthesisCache()
        envs = [
            PrefixEnv(6, SynthesisEvaluator(library, cache=cache), horizon=8, rng=i)
            for i in range(2)
        ]
        cfg = TrainerConfig(steps=24, batch_size=4, warmup_steps=8)
        rt = TrainingRuntime(
            envs, make_agent(), cfg, RuntimeConfig(mode="async", num_actors=2), rng=0
        )
        h = rt.run()
        assert h.env_steps == 24
        stats = h.synthesis_stats
        assert stats is not None
        assert stats["cache"]["shared"] is True
        assert stats["cache"]["hits"] > 0  # both actors start from the same structures

    def test_async_preempt_and_resume(self, tmp_path):
        rt = TrainingRuntime(
            [make_env(seed=0), make_env(seed=10)], make_agent(), CFG,
            RuntimeConfig(mode="async", num_actors=2, stop_after=30),
            checkpoint_dir=tmp_path, rng=0,
        )
        h1 = rt.run()
        assert rt.preempted
        assert 30 <= h1.env_steps < 60

        rt2 = TrainingRuntime(
            [make_env(seed=0), make_env(seed=10)], make_agent(), CFG,
            RuntimeConfig(mode="async", num_actors=2),
            checkpoint_dir=tmp_path, rng=0,
        )
        h2 = rt2.run(resume=True)
        assert not rt2.preempted
        assert h2.env_steps == 60
        # The resumed history extends the preempted one.
        assert h2.areas[: len(h1.areas)] == h1.areas
        assert h2.losses[: len(h1.losses)] == h1.losses

    def test_gradient_cadence_matches_sync_for_sparse_learning(self):
        # warmup not aligned to learn_every: the async learner must land on
        # exactly the synchronous schedule (steps 16, 24, 32 for this cfg).
        cfg = TrainerConfig(steps=40, batch_size=4, warmup_steps=16, learn_every=8)
        h_sync = Trainer(make_env(), make_agent(), cfg, rng=0).run()
        envs = [make_env(seed=i * 9) for i in range(2)]
        h_async = TrainingRuntime(
            envs, make_agent(), cfg, RuntimeConfig(mode="async", num_actors=2), rng=0
        ).run()
        assert h_async.gradient_steps == h_sync.gradient_steps

    def test_completed_async_run_always_checkpoints(self, tmp_path):
        # checkpoint_every=0 still writes the final snapshot (resume-extend).
        cfg = TrainerConfig(steps=24, batch_size=4, warmup_steps=8)
        rt = TrainingRuntime(
            [make_env(), make_env(5)], make_agent(), cfg,
            RuntimeConfig(mode="async", num_actors=2),
            checkpoint_dir=tmp_path, rng=0,
        )
        rt.run()
        assert rt.manager.steps() == [24]

    def test_inflight_episode_returns_survive_resume(self, tmp_path):
        # Preempt mid-episode (horizon 12, stop at 8): the accumulated
        # returns must ride the checkpoint, not reset to zero.
        cfg = TrainerConfig(steps=40, batch_size=4, warmup_steps=8)
        rt = TrainingRuntime(
            [make_env(0), make_env(7)], make_agent(), cfg,
            RuntimeConfig(mode="async", num_actors=2, stop_after=8),
            checkpoint_dir=tmp_path, rng=0,
        )
        rt.run()
        state, _ = rt.manager.load()
        saved = state["loop"]["episode_returns"]
        assert len(saved) == 2
        assert any(abs(r) > 0 for returns in saved for r in returns)

        rt2 = TrainingRuntime(
            [make_env(0), make_env(7)], make_agent(), cfg,
            RuntimeConfig(mode="async", num_actors=2),
            checkpoint_dir=tmp_path, rng=0,
        )
        h = rt2.run(resume=True)
        assert h.env_steps == 40

    def test_actor_error_propagates(self):
        class ExplodingEvaluator(AnalyticalEvaluator):
            def __init__(self):
                super().__init__(0.5, 0.5)
                self.calls = 0

            def evaluate(self, graph):
                self.calls += 1
                if self.calls > 10:
                    raise RuntimeError("synthetic evaluator failure")
                return super().evaluate(graph)

        envs = [
            PrefixEnv(6, ExplodingEvaluator(), horizon=12, rng=i) for i in range(2)
        ]
        rt = TrainingRuntime(
            envs, make_agent(), CFG, RuntimeConfig(mode="async", num_actors=2), rng=0
        )
        with pytest.raises(RuntimeError, match="actor"):
            rt.run()


class TestRuntimeConfigValidation:
    def test_bad_mode(self):
        with pytest.raises(ValueError, match="mode"):
            RuntimeConfig(mode="turbo")

    def test_bad_actor_count(self):
        with pytest.raises(ValueError, match="num_actors"):
            RuntimeConfig(num_actors=0)

    def test_bad_publish_cadence(self):
        with pytest.raises(ValueError, match="publish_every"):
            RuntimeConfig(publish_every=0)
