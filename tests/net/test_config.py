"""ClusterConfig: one dataclass behind the four cluster commands' flags.

The dataclass is the source of truth (field defaults ARE the CLI
defaults); these tests pin the flag names and defaults each command has
always shipped, so the consolidation cannot drift the CLI — the same
contract the differential-CLI gate checks end to end.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.cli import build_parser
from repro.net import ClusterConfig, ClusterSpec


class TestFlagContract:
    # The flag sets (and defaults) the pre-dataclass CLI shipped,
    # plus the opt-in --store-dir. Frozen: editing these means a CLI
    # compatibility break.
    LEARNER_DEFAULTS = {
        "actors": 2,
        "envs_per_actor": 4,
        "publish_every": 1,
        "listen": "127.0.0.1:0",
        "heartbeat_timeout": 60.0,
        "cluster_wait": 60.0,
        "store_dir": None,
        "checkpoint_dir": None,
        "checkpoint_every": 0,
        "stop_after": None,
        "resume": False,
        "inference": False,
        "inference_max_batch": 256,
        "inference_max_wait": 0.005,
        "backpressure_lag": 64,
        "throttle_seconds": 0.05,
    }

    def _defaults(self, command, *required):
        parser = build_parser()
        args = parser.parse_args([command, *required])
        return vars(args)

    def test_serve_learner_defaults(self):
        got = self._defaults("serve-learner")
        for name, default in self.LEARNER_DEFAULTS.items():
            assert got[name] == default, name

    def test_cluster_defaults_add_fleet_knobs(self):
        got = self._defaults("cluster")
        for name, default in self.LEARNER_DEFAULTS.items():
            assert got[name] == default, name
        assert got["farm_workers"] == 0
        assert got["restart_budget"] == 2

    def test_actor_defaults_and_heartbeat_override(self):
        got = self._defaults("actor", "--connect", "h:1")
        assert got["front_cache"] == 50_000
        assert got["heartbeat_timeout"] == 300.0  # actor-specific default
        assert got["reconnect_attempts"] == 8

    def test_farm_worker_defaults(self):
        got = self._defaults("farm-worker")
        assert got["listen"] == "127.0.0.1:0"
        assert got["prepared_cache"] == 10_000
        assert got["store_dir"] is None

    def test_unknown_command_rejected(self):
        import argparse

        with pytest.raises(ValueError, match="unknown cluster command"):
            ClusterConfig.add_arguments(argparse.ArgumentParser(), "nonsense")


class TestFromArgs:
    def test_parsed_flags_land_on_the_dataclass(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "cluster", "8",
                "--actors", "3",
                "--heartbeat-timeout", "12.5",
                "--store-dir", "/tmp/curves",
                "--farm-workers", "2",
            ]
        )
        cfg = ClusterConfig.from_args(args)
        assert cfg.actors == 3
        assert cfg.heartbeat_timeout == 12.5
        assert cfg.store_dir == "/tmp/curves"
        assert cfg.farm_workers == 2
        # Flags the command does not expose keep their field defaults.
        assert cfg.front_cache == 50_000

    def test_missing_attrs_fall_back_to_field_defaults(self):
        class Empty:
            pass

        assert ClusterConfig.from_args(Empty()) == ClusterConfig()


class TestSpecCarriage:
    def test_spec_ships_the_config_as_plain_dict(self):
        # ClusterSpec travels over the wire via asdict: the nested config
        # flattens to named keys old actors simply ignore.
        from repro.rl import ScalarizedDoubleDQN

        agent = ScalarizedDoubleDQN(4, blocks=0, channels=4, rng=0)
        cfg = ClusterConfig(heartbeat_timeout=7.0, store_dir="/tmp/x")
        spec = ClusterSpec.for_agent(agent, envs_per_actor=1, seed=0, config=cfg)
        wire = asdict(spec)
        assert wire["config"]["heartbeat_timeout"] == 7.0
        assert wire["config"]["store_dir"] == "/tmp/x"

    def test_config_defaults_to_absent(self):
        from repro.rl import ScalarizedDoubleDQN

        agent = ScalarizedDoubleDQN(4, blocks=0, channels=4, rng=0)
        spec = ClusterSpec.for_agent(agent, envs_per_actor=1, seed=0)
        assert asdict(spec)["config"] is None
