"""FleetObs: the respawn-proof fleet-total merge (the counter-loss fix)."""

from __future__ import annotations

from repro.obs.aggregate import FleetObs
from repro.obs.metrics import empty_snapshot


def snap(**counters):
    return {"counters": dict(counters), "gauges": {}, "histograms": {}}


class TestFleetObs:
    def test_update_is_cumulative_not_additive(self):
        fleet = FleetObs()
        fleet.update("actor-1", snap(rounds=3))
        fleet.update("actor-1", snap(rounds=7))  # newer cumulative snapshot
        assert fleet.merged()["counters"]["rounds"] == 7

    def test_sources_sum_across_the_fleet(self):
        fleet = FleetObs()
        fleet.update("actor-1", snap(rounds=3))
        fleet.update("actor-2", snap(rounds=4))
        assert fleet.merged()["counters"]["rounds"] == 7
        assert fleet.counts() == {"live_sources": 2, "retired_sources": 0}

    def test_retire_retains_totals_after_respawn(self):
        """The counter-loss fix: a worker's final snapshot outlives it, and
        its respawned replacement (a new source, starting at zero) adds on
        top instead of resetting the fleet total."""
        fleet = FleetObs()
        fleet.update("actor-1", snap(rounds=5))
        fleet.retire("actor-1")
        assert fleet.merged()["counters"]["rounds"] == 5
        fleet.update("actor-1b", snap(rounds=2))  # the respawn
        assert fleet.merged()["counters"]["rounds"] == 7
        assert fleet.counts() == {"live_sources": 1, "retired_sources": 1}

    def test_rejoin_same_source_does_not_double_count(self):
        # Sessions rotate on redial; the source (process) and its
        # cumulative counters survive, so totals must not double.
        fleet = FleetObs()
        fleet.update("actor-1", snap(rounds=4))
        fleet.update("actor-1", snap(rounds=6))  # after rejoin, same process
        assert fleet.merged()["counters"]["rounds"] == 6

    def test_monotone_across_restarts(self):
        fleet = FleetObs()
        total = 0
        for gen in range(3):
            source = f"actor-gen{gen}"
            fleet.update(source, snap(rounds=3))
            total += 3
            assert fleet.merged()["counters"]["rounds"] == total
            fleet.retire(source)
            assert fleet.merged()["counters"]["rounds"] == total

    def test_retire_unknown_or_empty_source_is_a_noop(self):
        fleet = FleetObs()
        fleet.retire("ghost")
        fleet.retire(None)
        fleet.update(None, snap(rounds=1))
        fleet.update("actor-1", "not a dict")
        assert fleet.merged() == empty_snapshot()

    def test_state_dict_round_trip_folds_live_into_retired(self):
        fleet = FleetObs()
        fleet.update("actor-1", snap(rounds=5))
        fleet.retire("actor-1")
        fleet.update("actor-2", snap(rounds=2))
        restored = FleetObs()
        restored.load_state_dict(fleet.state_dict())
        # actor-2 was live at checkpoint time; after restart its process
        # is gone, so its last snapshot counts as final.
        assert restored.merged()["counters"]["rounds"] == 7
        assert restored.counts() == {"live_sources": 0, "retired_sources": 2}
        # And totals keep growing from there.
        restored.update("actor-3", snap(rounds=1))
        assert restored.merged()["counters"]["rounds"] == 8

    def test_merged_returns_a_private_copy(self):
        fleet = FleetObs()
        fleet.update("actor-1", snap(rounds=1))
        out = fleet.merged()
        out["counters"]["rounds"] = 999
        assert fleet.merged()["counters"]["rounds"] == 1
