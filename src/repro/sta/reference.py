"""Reference static timing analysis (executable specification).

This module preserves the original dict-of-objects implementation of
:func:`analyze_timing` verbatim, as the oracle the array-backed
:class:`repro.sta.graph.TimingGraph` engine is property-tested against:
the optimized engine must be *bit-identical* — same delays, same worst
arcs, same required times — on full analyses and after arbitrary
incremental move sequences (see ``tests/sta/test_timing_graph.py``).

Like :mod:`repro.prefix.reference`, nothing here is used on a hot path;
it exists so the fast code can be checked against the code that actually
shipped before, not a strawman.
"""

from __future__ import annotations

from repro.netlist.ir import Netlist
from repro.sta.timing import TimingReport, net_load


def analyze_timing_reference(
    netlist: Netlist,
    target: "float | None" = None,
    input_arrivals: "dict[str, float] | None" = None,
) -> TimingReport:
    """The original per-instance dict traversal; see :class:`TimingReport`."""
    arrival: "dict[str, float]" = {net: 0.0 for net in netlist.inputs}
    if input_arrivals:
        unknown = set(input_arrivals) - set(netlist.inputs)
        if unknown:
            raise ValueError(f"input_arrivals for non-input nets: {sorted(unknown)}")
        arrival.update(input_arrivals)
    loads: "dict[str, float]" = {}
    order = netlist.topological_order()

    # Forward pass: arrival times. Track each net's worst contributing
    # (instance, input net) so critical-path extraction is a direct walk.
    worst_arc: "dict[str, tuple[str, str]]" = {}
    for name in order:
        inst = netlist.instances[name]
        out = inst.output_net
        load = loads.get(out)
        if load is None:
            load = net_load(netlist, out)
            loads[out] = load
        best = -1.0
        best_src = None
        for pin, net in inst.input_nets():
            t = arrival[net] + inst.cell.arc_delay(pin, load)
            if t > best:
                best = t
                best_src = net
        arrival[out] = best
        worst_arc[out] = (name, best_src)

    if netlist.outputs:
        worst_out = max(netlist.outputs, key=lambda n: arrival[n])
        delay = arrival[worst_out]
    else:
        worst_out = None
        delay = 0.0

    critical_path: "list[str]" = []
    net = worst_out
    while net is not None and net in worst_arc:
        inst_name, src = worst_arc[net]
        critical_path.append(inst_name)
        net = src
    critical_path.reverse()

    required: "dict[str, float]" = {}
    slack: "dict[str, float]" = {}
    wns = float("inf")
    if target is not None:
        for net_name in netlist.outputs:
            required[net_name] = target
        for name in reversed(order):
            inst = netlist.instances[name]
            out = inst.output_net
            req_out = required.get(out, float("inf"))
            load = loads[out]
            for pin, net_name in inst.input_nets():
                cand = req_out - inst.cell.arc_delay(pin, load)
                prev = required.get(net_name, float("inf"))
                if cand < prev:
                    required[net_name] = cand
        for net_name, arr in arrival.items():
            slack[net_name] = required.get(net_name, float("inf")) - arr
        wns = target - delay

    return TimingReport(
        delay=delay,
        target=target,
        wns=wns,
        arrival=arrival,
        required=required,
        slack=slack,
        critical_path=critical_path,
        area=netlist.area(),
    )
