"""Physical-synthesis substrate: the paper's reward generator.

``Synthesizer`` applies the optimization classes the paper lists for
OpenPhySyn — gate sizing, gate cloning, buffer insertion, pin swapping —
plus area recovery, driven by a delay target. ``synthesize_curve`` runs it
at 4 targets and PCHIP-interpolates the area-delay trade-off exactly as
Section IV-D / Fig. 3 describe; ``AreaDelayCurve.w_optimal`` picks the
scalarization-optimal point that defines the RL reward. ``SynthesisCache``
reproduces the content-hash design cache of the training system.

The optimizer runs on the incremental :class:`repro.sta.TimingGraph`
engine: one compile per run, O(cone) accept/reject trials, and one
compiled+pin-swapped state forked across a curve's delay targets. The
pre-rewrite full-STA-per-trial path survives in
:mod:`repro.synth.reference` and is regression-tested byte-identical.

Where curves come from is a pluggable :mod:`repro.synth.backend` seam:
``SynthesisEvaluator`` delegates to an :class:`EvaluationBackend` —
:class:`LocalBackend` (cache + in-process synthesis),
:class:`FarmBackend` (a :class:`repro.distributed.SynthesisFarm` pool or
remote workers) or :class:`ClusterBackend` (a learner's claim/lease cache
service, :mod:`repro.synth.leases`) — all byte-identical, all reporting
one stats schema.
"""

from repro.synth.optimizer import Synthesizer, SynthesisResult
from repro.synth.backend import (
    STATS_KEYS,
    ClusterBackend,
    EvaluationBackend,
    FarmBackend,
    LocalBackend,
)
from repro.synth.leases import LocalServiceClient, SharedCacheService
from repro.synth.curve import (
    AreaDelayCurve,
    synthesize_curve,
    curve_from_prepared,
    calibrate_scaling,
    C_AREA,
    C_DELAY,
)
from repro.synth.cache import SynthesisCache
from repro.synth.evaluator import SynthesisEvaluator, AnalyticalEvaluator, CircuitMetrics
from repro.synth.commercial import CommercialSynthesizer, commercial_adder_family
from repro.synth.report import qor_report

__all__ = [
    "Synthesizer",
    "SynthesisResult",
    "STATS_KEYS",
    "EvaluationBackend",
    "LocalBackend",
    "FarmBackend",
    "ClusterBackend",
    "SharedCacheService",
    "LocalServiceClient",
    "AreaDelayCurve",
    "synthesize_curve",
    "curve_from_prepared",
    "calibrate_scaling",
    "C_AREA",
    "C_DELAY",
    "SynthesisCache",
    "SynthesisEvaluator",
    "AnalyticalEvaluator",
    "CircuitMetrics",
    "CommercialSynthesizer",
    "commercial_adder_family",
    "qor_report",
]
