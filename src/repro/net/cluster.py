"""Localhost cluster orchestration: one learner, N actor OS processes.

``repro cluster --actors N`` is the zero-config proof of the network
subsystem: it binds the learner server on a loopback port, spawns ``N``
``repro actor --connect`` *subprocesses* (real OS processes — each with
its own interpreter and GIL, which is the payoff the threaded runtime
could not reach), drives the learner loop to the step budget, and reaps
the actors. The same actor command pointed at a routable address is the
multi-host deployment; nothing here is loopback-specific except the
default bind.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path


def actor_command(
    address: "tuple[str, int]", extra_args: "list[str] | None" = None
) -> "list[str]":
    """The argv that runs one remote actor against ``address``."""
    return [
        sys.executable,
        "-m",
        "repro",
        "actor",
        "--connect",
        f"{address[0]}:{address[1]}",
        *(extra_args or []),
    ]


def _actor_env() -> "dict[str, str]":
    """Subprocess environment with this repro importable on PYTHONPATH."""
    import repro

    src_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    parts = [src_root] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(dict.fromkeys(parts))
    return env


def launch_farm_workers(
    count: int, extra_args: "list[str] | None" = None
) -> "tuple[list[subprocess.Popen], list[str]]":
    """Spawn ``count`` ``repro farm-worker`` daemons on ephemeral ports.

    Returns ``(processes, addresses)`` — each daemon prints its bound
    address on stdout, which is read back here so actors can be pointed
    at the workers (``repro actor --farm``).
    """
    if count < 1:
        raise ValueError("need at least one farm worker")
    env = _actor_env()
    procs = []
    addresses = []
    try:
        for _ in range(count):
            proc = subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro",
                    "farm-worker",
                    "--listen",
                    "127.0.0.1:0",
                    *(extra_args or []),
                ],
                stdout=subprocess.PIPE,
                text=True,
                env=env,
            )
            procs.append(proc)
            line = proc.stdout.readline()
            if "listening on" not in line:
                raise RuntimeError(
                    f"farm worker failed to start (got {line.strip()!r})"
                )
            addresses.append(line.strip().rsplit(" ", 1)[-1])
    except BaseException:
        stop_farm_workers(procs)
        raise
    return procs, addresses


def stop_farm_workers(procs: "list[subprocess.Popen]", timeout: float = 10.0) -> None:
    """Terminate farm-worker daemons (they serve until told to stop)."""
    for proc in procs:
        proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()


def launch_actors(
    address: "tuple[str, int]",
    count: int,
    extra_args: "list[str] | None" = None,
) -> "list[subprocess.Popen]":
    """Spawn ``count`` actor subprocesses dialing ``address``."""
    if count < 1:
        raise ValueError("need at least one actor")
    env = _actor_env()
    return [
        subprocess.Popen(actor_command(address, extra_args), env=env)
        for _ in range(count)
    ]


def reap_actors(
    procs: "list[subprocess.Popen]", timeout: float = 60.0
) -> "list[int]":
    """Wait for actor subprocesses; escalate to kill past the timeout.

    Returns the exit codes (killed actors report their signal-negative
    code — the caller decides whether that is a failure).
    """
    deadline = time.monotonic() + timeout
    codes = []
    for proc in procs:
        remaining = max(deadline - time.monotonic(), 0.1)
        try:
            codes.append(proc.wait(timeout=remaining))
        except subprocess.TimeoutExpired:
            proc.terminate()
            try:
                codes.append(proc.wait(timeout=5.0))
            except subprocess.TimeoutExpired:
                proc.kill()
                codes.append(proc.wait())
    return codes


def run_local_cluster(
    runtime,
    num_actors: int,
    steps: "int | None" = None,
    resume: bool = False,
    actor_args: "list[str] | None" = None,
    reap_timeout: float = 60.0,
):
    """Bind, spawn actors, train, reap; returns ``(history, exit_codes)``.

    ``runtime`` must be a :class:`repro.rl.runtime.TrainingRuntime` in
    cluster mode. Actors that outlive the learner (it stops serving once
    the budget is met) exit on their next round's stop reply; stragglers
    are terminated after ``reap_timeout``.
    """
    address = runtime.bind()
    procs = launch_actors(address, num_actors, extra_args=actor_args)
    try:
        history = runtime.run(steps=steps, resume=resume)
    except BaseException:
        for proc in procs:
            proc.terminate()
        reap_actors(procs, timeout=5.0)
        raise
    codes = reap_actors(procs, timeout=reap_timeout)
    return history, codes
