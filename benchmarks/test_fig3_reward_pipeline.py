"""Fig. 3 — the reward pipeline: 4-target sampling, PCHIP, w-optimal points.

Regenerates the three panels of Fig. 3 numerically for a pair of adjacent
states (ripple-carry 8b and its Fig. 1-style successor): the sampled
area-delay points per state, the interpolated curves, and the vector reward
between the w-optimal points.
"""

import numpy as np

from repro.cells import nangate45
from repro.prefix import ripple_carry
from repro.synth import calibrate_scaling, synthesize_curve
from repro.utils import scatter_plot


def run_fig3():
    library = nangate45()
    s_t = ripple_carry(8)
    s_t1 = s_t.add_node(7, 4)

    curve_t = synthesize_curve(s_t, library)
    curve_t1 = synthesize_curve(s_t1, library)

    pts = [(a, d) for c in (curve_t, curve_t1) for d, a in c.points()]
    c_area, c_delay = calibrate_scaling(pts)
    w_area, w_delay = 0.5, 0.5
    opt_t = curve_t.w_optimal(w_area, w_delay, c_area, c_delay)
    opt_t1 = curve_t1.w_optimal(w_area, w_delay, c_area, c_delay)
    reward = np.array(
        [c_area * (opt_t[0] - opt_t1[0]), c_delay * (opt_t[1] - opt_t1[1])]
    )
    return curve_t, curve_t1, opt_t, opt_t1, reward


def test_fig3_reward_pipeline(benchmark):
    curve_t, curve_t1, opt_t, opt_t1, reward = benchmark.pedantic(
        run_fig3, rounds=1, iterations=1
    )

    print("\n=== Fig. 3: reward calculation pipeline (8b, s_t=ripple, a=add(7,4)) ===")
    series = {
        "s_t curve": [(a, d) for d, a in curve_t.points()],
        "s_t+1 curve": [(a, d) for d, a in curve_t1.points()],
        "w-opt t": [opt_t],
        "w-opt t+1": [opt_t1],
    }
    print(scatter_plot(series))
    print(f"s_t   samples: {curve_t}")
    print(f"s_t+1 samples: {curve_t1}")
    print(f"w-optimal(s_t)   = area {opt_t[0]:.1f} um2, delay {opt_t[1]:.4f} ns")
    print(f"w-optimal(s_t+1) = area {opt_t1[0]:.1f} um2, delay {opt_t1[1]:.4f} ns")
    print(f"reward vector r_t = [{reward[0]:+.4f}, {reward[1]:+.4f}] (scaled)")

    # Shape checks: 4 samples per state, monotone curves, and the parallel
    # successor must be faster at the fast end (that is what the add buys).
    assert 2 <= len(curve_t.points()) <= 4
    assert curve_t1.min_delay < curve_t.min_delay
    # Adding a node cannot shrink minimum achievable area.
    assert curve_t1.area_at(curve_t1.max_delay) >= curve_t.area_at(curve_t.max_delay) - 1e-6
    # The delay component of the reward must be positive (delay improved).
    assert reward[1] > 0
